"""Multi-node multi-GPU backend (paper §V: the long-term goal).

The paper's conclusion targets "multi-node multi-GPU systems ... to be able
to use even larger data sets". This backend delivers the natural
distributed scheme for the *linear* kernel, where the Gram factorization
``K_bar @ v = X_bar @ (X_bar.T @ v)`` makes true data distribution
possible:

* the data points (rows) are split across the nodes — unlike the
  *feature*-wise split inside a node, a row split shrinks every node's
  memory footprint with the data set size, which is the point of going
  multi-node;
* within each node the local row block is split feature-wise across the
  GPUs, exactly like the single-node multi-GPU scheme (§III-C5);
* one CG matvec costs two local GEMV passes over each GPU's slab plus a
  single ``d``-length allreduce across the nodes (the ``X_bar.T @ v``
  partial sums) — the only inter-node traffic per iteration.

The non-linear kernels distribute by *samples* (the out-of-core
row-shard scheme): each node owns a row-shard of the data and its slice
of ``v``, and per matvec streams every row tile of ``X_bar`` against its
own columns, producing a full-length partial product. The partials
genuinely overlap, so combining them is a true ``n``-length allreduce —
the per-iteration streaming the linear Gram factorization avoids, now
delivered with its modeled cost (every foreign tile is charged as
inter-node traffic, every tile evaluation as GPU kernel time split
feature-wise over the node's devices).

Everything is functional (the arithmetic is exact, verified against the
single-node operator); node-local GPU time comes from the simulated
devices, inter-node time from :class:`repro.parallel.mpi_sim.SimCommunicator`.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from ..core.qmatrix import QMatrixBase
from ..exceptions import DataError, DeviceError, DeviceLostError
from ..parallel.mpi_sim import NetworkSpec, SimCommunicator
from ..parallel.partition import BlockRange, chunk_ranges, feature_split
from ..parameter import Parameter
from ..profiling import ComponentTimer
from ..simgpu.catalog import get_device_spec
from ..simgpu.device import SimulatedDevice
from ..simgpu.spec import DeviceSpec
from ..types import BackendType, KernelType
from .base import CSVM, report_device_summaries
from .kernels import vector_ops_costs
from .soa import transform_to_soa

__all__ = ["MultiNodeCSVM", "MultiNodeQMatrix"]

_FP64_BYTES = 8


def _gemv_cost(rows: int, cols: int) -> tuple:
    """(flops, global_bytes) of one dense GEMV over a rows x cols slab."""
    flops = 2.0 * rows * cols
    gbytes = (rows * cols + rows + cols) * _FP64_BYTES
    return flops, gbytes


class MultiNodeQMatrix(QMatrixBase):
    """Row-distributed Q_tilde across simulated nodes.

    Node ``k`` owns the row block ``rows_k`` of ``X_bar``; its GPUs hold
    feature slices of that block in SoA layout. Per linear-kernel matvec:

    1. each GPU computes its slice of ``w_k = X_bar[rows_k].T @ v[rows_k]``
       (disjoint feature segments — no intra-node reduction needed);
    2. the nodes allreduce ``w`` (one ``d``-vector);
    3. each GPU computes its contribution to ``out[rows_k] = X_bar[rows_k] @ w``
       from its feature slice; the host sums the per-GPU partials.

    Non-linear kernels have no Gram factorization, so they run the
    sample-sharded scheme instead: node ``k`` streams *every* row tile of
    ``X_bar`` against its own columns ``X_bar[rows_k]``, producing the
    full-length partial ``p_k[I] += K(X_I, X_bar[rows_k]) @ v[rows_k]``.
    Foreign tiles are charged as inter-node broadcasts, tile kernels as
    GPU launches split feature-wise over the node's devices, and the
    overlapping partials combine in one ``n``-length allreduce.
    """

    def __init__(
        self,
        X: np.ndarray,
        y: np.ndarray,
        param: Parameter,
        *,
        num_nodes: int,
        gpus_per_node: int,
        device: Union[str, DeviceSpec] = "nvidia_a100",
        network: NetworkSpec = NetworkSpec(),
        fault_plan=None,
        tile_rows: int = 1024,
    ) -> None:
        super().__init__(X, y, param)
        if tile_rows < 1:
            raise DeviceError("tile_rows must be positive")
        self._tile_rows = int(tile_rows)
        if num_nodes < 1 or gpus_per_node < 1:
            raise DeviceError("need at least one node with one GPU")
        spec = device if isinstance(device, DeviceSpec) else get_device_spec(device)
        if not spec.supports("cuda"):
            raise DeviceError("multi-node backend drives CUDA-capable devices")

        n, d = self.X_bar.shape
        self.row_blocks: List[BlockRange] = [
            r for r in chunk_ranges(n, num_nodes) if len(r) > 0
        ]
        # One rank per non-empty row block (tiny data may not fill the cluster).
        self.comm = SimCommunicator(len(self.row_blocks), network)
        self.nodes: List[List[SimulatedDevice]] = []
        self._node_data = []  # per node: list of (soa slab, feature slice)
        # Kept for failover: redistribution re-slices the node's SoA block.
        self._node_soa = []

        feature_ranges = feature_split(d, gpus_per_node)
        for node_id, rows in enumerate(self.row_blocks):
            soa = transform_to_soa(self.X_bar[rows.slice], block_size=64)
            devices = []
            slabs = []
            for gpu_id, frange in enumerate(feature_ranges):
                dev = SimulatedDevice(spec, "cuda", device_id=node_id * 100 + gpu_id)
                dev.attach_fault_plan(fault_plan)
                dev.initialize()
                slab = soa.feature_slice(frange.slice)
                dev.malloc("data", slab.nbytes)
                dev.malloc("vectors", 4 * max(len(rows), d) * _FP64_BYTES)
                dev.copy_to_device(slab.nbytes)
                devices.append(dev)
                slabs.append((slab, frange))
            self.nodes.append(devices)
            self._node_data.append(slabs)
            self._node_soa.append(soa)

    # -- fault recovery -----------------------------------------------------------

    def handle_device_loss(self, device: SimulatedDevice) -> None:
        """Redistribute a lost GPU's feature slice within its node.

        The row split across nodes is fixed (each node owns its rows'
        data), but *within* the owning node the feature-wise split works
        for any surviving GPU count — the same graceful degradation as the
        single-node operator. A node whose last GPU dies loses its row
        block entirely, which is unrecoverable (``device=None``).
        """
        for node_id, devices in enumerate(self.nodes):
            if device in devices:
                break
        else:
            raise DeviceError(
                f"device {device.spec.name!r} (id {device.device_id}) does "
                "not belong to this operator"
            )
        survivors = [dev for dev in devices if dev is not device and not dev.lost]
        if not survivors:
            raise DeviceLostError(
                f"node {node_id} lost its last GPU; its row block cannot be "
                "recovered by redistribution",
                device=None,
            )
        soa = self._node_soa[node_id]
        feature_ranges = feature_split(self.X_bar.shape[1], len(survivors))
        survivors = survivors[: len(feature_ranges)]
        slabs = []
        for dev, frange in zip(survivors, feature_ranges):
            dev.clock += dev.spec.fault_recovery_s
            dev.free("data")
            slab = soa.feature_slice(frange.slice)
            dev.malloc("data", slab.nbytes)
            dev.copy_to_device(slab.nbytes)
            slabs.append((slab, frange))
        self.nodes[node_id] = survivors
        self._node_data[node_id] = slabs

    # -- distributed matvec -----------------------------------------------------------

    def _kernel_matvec(self, v: np.ndarray) -> np.ndarray:
        if self.param.kernel is not KernelType.LINEAR:
            return self._row_shard_matvec(v)
        d = self.X_bar.shape[1]
        n = self.shape[0]
        # Phase 1: local X^T v partials per node (per GPU: its feature slice).
        partial_ws = []
        for rows, devices, slabs in zip(self.row_blocks, self.nodes, self._node_data):
            v_local = v[rows.slice]
            w_node = np.zeros(d)
            for dev, (slab, frange) in zip(devices, slabs):
                w_node[frange.slice] = slab.logical.T @ v_local
                flops, gbytes = _gemv_cost(len(rows), len(frange))
                dev.launch(
                    "multinode_gemv_xt_v",
                    flops=flops,
                    global_bytes=gbytes,
                    grid_blocks=max(len(frange) // 256, 1),
                    block_threads=256,
                )
                # Partial segment to the host for the allreduce.
                dev.copy_from_device(len(frange) * _FP64_BYTES)
            partial_ws.append(w_node)

        # Phase 2: one d-length allreduce across the nodes.
        ws = self.comm.allreduce_sum(partial_ws)

        # Phase 3: local X w per node.
        out = np.empty(n)
        for rows, devices, slabs, w in zip(
            self.row_blocks, self.nodes, self._node_data, ws
        ):
            acc = np.zeros(len(rows))
            for dev, (slab, frange) in zip(devices, slabs):
                dev.copy_to_device(len(frange) * _FP64_BYTES)
                acc += slab.logical @ w[frange.slice]
                flops, gbytes = _gemv_cost(len(rows), len(frange))
                dev.launch(
                    "multinode_gemv_x_w",
                    flops=flops,
                    global_bytes=gbytes,
                    grid_blocks=max(len(rows) // 256, 1),
                    block_threads=256,
                )
                vc = vector_ops_costs(max(len(rows), 1))
                dev.launch(
                    "multinode_vector_ops",
                    flops=vc.flops,
                    global_bytes=vc.global_bytes,
                    grid_blocks=vc.grid_blocks,
                    block_threads=vc.block_threads,
                )
            out[rows.slice] = acc
        return out

    def _row_shard_matvec(self, v: np.ndarray) -> np.ndarray:
        """Sample-sharded matvec for the non-linear kernels.

        Every node produces a *full-length* partial product from its own
        columns; the partials overlap on every entry, so the combine is a
        genuine ``n``-vector allreduce (unlike the linear path's
        ``d``-vector Gram reduction).
        """
        from ..core.kernels import kernel_matrix

        n, d = self.X_bar.shape
        kw = self.param.kernel_kwargs()
        partials = []
        for node_id, (rows, devices, slabs) in enumerate(
            zip(self.row_blocks, self.nodes, self._node_data)
        ):
            v_local = v[rows.slice]
            cols = self.X_bar[rows.slice]
            p = np.zeros(n)
            for tstart in range(0, n, self._tile_rows):
                tstop = min(tstart + self._tile_rows, n)
                trows = tstop - tstart
                # Foreign tiles reach the node over the fabric; the node's
                # own rows are already resident.
                owned = rows.start <= tstart and tstop <= rows.stop
                tile_bytes = trows * d * _FP64_BYTES
                if not owned and self.comm.num_ranks > 1:
                    self.comm.broadcast(
                        np.empty(0), root=self._owner_of(tstart)
                    )
                    self.comm.bytes_moved += tile_bytes
                tile = kernel_matrix(
                    self.X_bar[tstart:tstop], cols, self.param.kernel, **kw
                )
                p[tstart:tstop] += tile @ v_local
                for dev, (_, frange) in zip(devices, slabs):
                    # Feature-sliced distance/inner-product partials; the
                    # kernel function itself is O(trows * |rows|).
                    flops = 2.0 * trows * len(rows) * max(len(frange), 1)
                    gbytes = (
                        trows * len(frange)
                        + len(rows) * len(frange)
                        + trows * len(rows)
                    ) * _FP64_BYTES
                    dev.launch(
                        "multinode_kernel_tile",
                        flops=flops,
                        global_bytes=gbytes,
                        grid_blocks=max(trows // 256, 1),
                        block_threads=256,
                    )
            for dev in devices:
                dev.copy_from_device(n * _FP64_BYTES)
            partials.append(p)
        return self.comm.allreduce_sum(partials)[0]

    def _owner_of(self, row: int) -> int:
        for node_id, rows in enumerate(self.row_blocks):
            if rows.start <= row < rows.stop:
                return node_id
        return 0

    # -- reporting ----------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self.row_blocks)

    def device_time(self) -> float:
        """Modeled elapsed time: slowest node's GPU clock + communication."""
        if not self.nodes or any(not devices for devices in self.nodes):
            raise DataError(
                "cannot report a device time: at least one node holds no devices"
            )
        per_node = [max(dev.clock for dev in devices) for devices in self.nodes]
        return max(per_node) + self.comm.elapsed

    def communication_time(self) -> float:
        return self.comm.elapsed

    def memory_per_gpu_gib(self) -> float:
        """Worst per-GPU peak footprint (GPUs are asymmetric after failover)."""
        if not self.nodes or any(not devices for devices in self.nodes):
            raise DataError(
                "cannot report per-GPU memory: at least one node holds no devices"
            )
        return (
            max(dev.peak_allocated_bytes for devices in self.nodes for dev in devices)
            / 1024**3
        )


class MultiNodeCSVM(CSVM):
    """Backend driving a simulated cluster of identical GPU nodes.

    Parameters
    ----------
    num_nodes:
        Cluster size (ranks).
    gpus_per_node:
        Devices per node (the paper's node has four A100s).
    device:
        Catalog key / spec of the per-node GPU model.
    network:
        Inter-node fabric parameters.
    fault_plan:
        Optional :class:`repro.simgpu.FaultPlan` attached to every GPU in
        the cluster (fault-injection experiments).
    """

    backend_type = BackendType.AUTOMATIC

    def __init__(
        self,
        num_nodes: int = 2,
        *,
        gpus_per_node: int = 4,
        device: Union[str, DeviceSpec] = "nvidia_a100",
        network: NetworkSpec = NetworkSpec(),
        fault_plan=None,
    ) -> None:
        if num_nodes < 1:
            raise DeviceError("need at least one node")
        self.num_nodes = int(num_nodes)
        self.gpus_per_node = int(gpus_per_node)
        self.device = device
        self.network = network
        self.fault_plan = fault_plan
        self._last_qmatrix: Optional[MultiNodeQMatrix] = None

    def create_qmatrix(
        self, X: np.ndarray, y: np.ndarray, param: Parameter
    ) -> MultiNodeQMatrix:
        qmat = MultiNodeQMatrix(
            X,
            y,
            param,
            num_nodes=self.num_nodes,
            gpus_per_node=self.gpus_per_node,
            device=self.device,
            network=self.network,
            fault_plan=self.fault_plan,
        )
        self._last_qmatrix = qmat
        return qmat

    def finalize(self, qmat: QMatrixBase, timings: ComponentTimer) -> None:
        if isinstance(qmat, MultiNodeQMatrix):
            timings.section("cg_device").add(qmat.device_time())
            timings.section("communication").add(qmat.communication_time())
            for devices in qmat.nodes:
                report_device_summaries(devices)

    def device_time(self) -> float:
        if self._last_qmatrix is None:
            raise DeviceError("no training run has been executed yet")
        return self._last_qmatrix.device_time()

    def communication_time(self) -> float:
        if self._last_qmatrix is None:
            raise DeviceError("no training run has been executed yet")
        return self._last_qmatrix.communication_time()

    def memory_per_gpu_gib(self) -> float:
        if self._last_qmatrix is None:
            raise DeviceError("no training run has been executed yet")
        return self._last_qmatrix.memory_per_gpu_gib()

    def describe(self) -> str:
        return (
            f"multi-node backend: {self.num_nodes} node(s) x "
            f"{self.gpus_per_node} GPU(s) over {self.network.name} (simulated)"
        )
