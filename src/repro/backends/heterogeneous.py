"""Heterogeneous multi-device backend with load balancing (paper §V).

The paper's long-term plan: "extend all PLSSVM kernels to support
multi-node multi-GPU execution including load balancing on heterogeneous
hardware". This backend takes a *mixed* device set (e.g. an A100 next to a
V100) and splits the feature dimension proportionally to each device's
sustained throughput for its backend, so that all devices finish their
per-iteration matvec slice at roughly the same simulated time — the
feature-wise analogue of makespan-balanced scheduling.

``balanced=False`` falls back to the equal split, which the ablation
benchmark uses to quantify the balancing gain: with an equal split the
slowest device is the critical path.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.qmatrix import QMatrixBase
from ..exceptions import BackendUnavailableError, DeviceError
from ..parallel.partition import feature_split, weighted_feature_split
from ..parameter import Parameter
from ..profiling import ComponentTimer
from ..simgpu.catalog import get_device_spec
from ..simgpu.device import SimulatedDevice
from ..simgpu.spec import DeviceSpec
from ..types import BackendType
from .base import CSVM, report_device_summaries
from .device_qmatrix import DeviceQMatrix
from .kernels import KernelConfig

__all__ = ["HeterogeneousCSVM"]

#: Backend efficiency keys tried per device, fastest first — the mixed rig
#: drives every device through its best available backend, like a future
#: multi-backend PLSSVM process would.
_KEY_PREFERENCE = ("cuda", "opencl", "sycl_hipsycl", "sycl_dpcpp")


def _best_key(spec: DeviceSpec) -> str:
    for key in _KEY_PREFERENCE:
        if spec.supports(key):
            return key
    raise BackendUnavailableError(f"no device backend can drive {spec.name!r}")


class HeterogeneousCSVM(CSVM):
    """Multi-device backend over a mixed set of simulated devices.

    Parameters
    ----------
    devices:
        Catalog keys or :class:`DeviceSpec` instances, one per device.
    balanced:
        ``True`` (default) sizes the feature slices by sustained
        throughput; ``False`` splits equally (for comparison).
    config:
        Blocked-kernel tuning configuration shared by all devices.
    fault_plan:
        Optional :class:`repro.simgpu.FaultPlan` attached to every device.
    """

    backend_type = BackendType.AUTOMATIC

    def __init__(
        self,
        devices: Sequence[Union[str, DeviceSpec]],
        *,
        balanced: bool = True,
        config: Optional[KernelConfig] = None,
        fault_plan=None,
    ) -> None:
        if not devices:
            raise DeviceError("at least one device is required")
        specs = [
            d if isinstance(d, DeviceSpec) else get_device_spec(d) for d in devices
        ]
        self.config = config or KernelConfig()
        self.balanced = bool(balanced)
        self.devices: List[SimulatedDevice] = [
            SimulatedDevice(spec, _best_key(spec), device_id=i)
            for i, spec in enumerate(specs)
        ]
        self.fault_plan = fault_plan
        for dev in self.devices:
            dev.attach_fault_plan(fault_plan)
        self._last_qmatrix: Optional[DeviceQMatrix] = None

    @property
    def num_devices(self) -> int:
        return len(self.devices)

    def throughputs(self) -> List[float]:
        """Sustained FLOP/s per device under its chosen backend key."""
        return [d.cost_model.sustained_flops for d in self.devices]

    def _ranges(self, num_features: int):
        if len(self.devices) == 1:
            return None
        if self.balanced:
            return weighted_feature_split(num_features, self.throughputs())
        return feature_split(num_features, len(self.devices))

    def create_qmatrix(
        self, X: np.ndarray, y: np.ndarray, param: Parameter
    ) -> DeviceQMatrix:
        for device in self.devices:
            device.reset()
        qmat = DeviceQMatrix(
            X,
            y,
            param,
            self.devices,
            config=self.config,
            feature_ranges=self._ranges(np.asarray(X).shape[1]),
        )
        self._last_qmatrix = qmat
        return qmat

    def finalize(self, qmat: QMatrixBase, timings: ComponentTimer) -> None:
        if isinstance(qmat, DeviceQMatrix):
            qmat.writeback()
            timings.section("cg_device").add(qmat.device_time())
            report_device_summaries(qmat.devices)

    def device_time(self) -> float:
        if self._last_qmatrix is None:
            raise DeviceError("no training run has been executed yet")
        return self._last_qmatrix.device_time()

    def per_device_times(self, *, include_init: bool = False) -> List[Tuple[str, float]]:
        """(device name, busy seconds) pairs — the balancing diagnostic.

        ``include_init=False`` (default) subtracts the one-time context
        initialization: it is a constant per device and would mask the
        balance of the actual iteration work at small problem sizes.
        """
        if self._last_qmatrix is None:
            raise DeviceError("no training run has been executed yet")
        out = []
        for d in self._last_qmatrix.active_devices:
            busy = d.clock - (0.0 if include_init else d.spec.init_overhead_s)
            out.append((d.spec.name, max(busy, 0.0)))
        return out

    def imbalance(self) -> float:
        """Max/min active-device busy-time ratio (1.0 = perfectly balanced).

        Computed over the per-iteration work (init excluded).
        """
        times = [t for _, t in self.per_device_times()]
        if min(times) <= 0:
            return float("inf")
        return max(times) / min(times)

    def describe(self) -> str:
        names = ", ".join(d.spec.name for d in self.devices)
        mode = "throughput-balanced" if self.balanced else "equal-split"
        return f"heterogeneous backend ({mode}) on [{names}] (simulated)"
