"""CUDA backend: the fastest of the device backends, NVIDIA-only.

Table I shows CUDA leading on every NVIDIA GPU; the catalog encodes that as
the highest per-device efficiency for the ``"cuda"`` key. The backend
refuses non-NVIDIA platforms, reproducing ThunderSVM's — and real CUDA's —
vendor lock that PLSSVM's portability argument is built on.
"""

from __future__ import annotations

from ...types import BackendType, TargetPlatform
from ..base import SimulatedDeviceCSVM

__all__ = ["CUDACSVM"]


class CUDACSVM(SimulatedDeviceCSVM):
    """Simulated CUDA backend (NVIDIA GPUs only)."""

    backend_type = BackendType.CUDA
    supported_platforms = (TargetPlatform.GPU_NVIDIA,)
    efficiency_key = "cuda"
