"""CUDA backend (simulated NVIDIA devices)."""

from .backend import CUDACSVM

__all__ = ["CUDACSVM"]
