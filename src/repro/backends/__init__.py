"""Backend registry and runtime selection.

PLSSVM compiles its backends conditionally and selects one at runtime; this
package mirrors that with a registry keyed by :class:`repro.types.BackendType`.
``"automatic"`` resolution follows the C++ library's preference order for
the requested target platform: CUDA where the platform is NVIDIA, then
OpenCL, then SYCL — and OpenMP for CPU targets.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type, Union

from ..exceptions import BackendUnavailableError
from ..types import BackendType, TargetPlatform
from .base import CSVM, SimulatedDeviceCSVM
from .cuda import CUDACSVM
from .device_qmatrix import DeviceQMatrix
from .kernels import KernelConfig
from .opencl import OpenCLCSVM
from .openmp import OpenMPCSVM, ThreadedQMatrix
from .soa import SoAMatrix, transform_to_soa
from .sycl import SYCLCSVM

__all__ = [
    "CSVM",
    "SimulatedDeviceCSVM",
    "CUDACSVM",
    "OpenCLCSVM",
    "OpenMPCSVM",
    "SYCLCSVM",
    "ThreadedQMatrix",
    "DeviceQMatrix",
    "KernelConfig",
    "SoAMatrix",
    "transform_to_soa",
    "BACKEND_REGISTRY",
    "create_backend",
    "list_available_backends",
    "preferred_backend",
]

BACKEND_REGISTRY: Dict[BackendType, Type[CSVM]] = {
    BackendType.OPENMP: OpenMPCSVM,
    BackendType.CUDA: CUDACSVM,
    BackendType.OPENCL: OpenCLCSVM,
    BackendType.SYCL: SYCLCSVM,
}

#: Automatic-resolution preference per target platform (most efficient first),
#: following the Table I backend ordering.
_PREFERENCE: Dict[TargetPlatform, List[BackendType]] = {
    TargetPlatform.CPU: [BackendType.OPENMP, BackendType.OPENCL, BackendType.SYCL],
    TargetPlatform.GPU_NVIDIA: [BackendType.CUDA, BackendType.OPENCL, BackendType.SYCL],
    TargetPlatform.GPU_AMD: [BackendType.OPENCL, BackendType.SYCL],
    TargetPlatform.GPU_INTEL: [BackendType.OPENCL, BackendType.SYCL],
    TargetPlatform.AUTOMATIC: [
        BackendType.CUDA,
        BackendType.OPENCL,
        BackendType.SYCL,
        BackendType.OPENMP,
    ],
}


def list_available_backends() -> List[BackendType]:
    """All backends usable on this installation (every one — the hardware is simulated)."""
    return list(BACKEND_REGISTRY)


def preferred_backend(target: Union[str, TargetPlatform]) -> BackendType:
    """The backend automatic resolution picks for ``target``."""
    target = TargetPlatform.from_name(target)
    return _PREFERENCE[target][0]


def create_backend(
    backend: Union[str, BackendType],
    *,
    target: Union[str, TargetPlatform] = TargetPlatform.AUTOMATIC,
    n_devices: int = 1,
    config: Optional[KernelConfig] = None,
    **kwargs,
) -> CSVM:
    """Instantiate a backend by name.

    Parameters
    ----------
    backend:
        A :class:`BackendType` or its name; ``"automatic"`` applies the
        per-target preference order.
    target:
        Target platform forwarded to device backends.
    n_devices:
        Device count for multi-GPU execution (device backends only).
    config:
        Kernel tuning configuration (device backends only).
    kwargs:
        Extra backend-specific options (e.g. ``num_threads`` for OpenMP,
        ``implementation`` for SYCL, ``device`` for pinning a catalog GPU).
    """
    backend = BackendType.from_name(backend)
    target = TargetPlatform.from_name(target)
    if backend is BackendType.AUTOMATIC:
        backend = _PREFERENCE[target][0]
        if target is TargetPlatform.AUTOMATIC and n_devices == 1 and "device" not in kwargs:
            # Bare automatic everything: prefer the host CPU backend — it is
            # the only one executing on real hardware.
            backend = BackendType.OPENMP

    cls = BACKEND_REGISTRY.get(backend)
    if cls is None:
        raise BackendUnavailableError(f"backend {backend} is not registered")

    if backend is BackendType.OPENMP:
        if target.is_gpu:
            raise BackendUnavailableError(
                "the OpenMP backend runs on the host CPU; it cannot target GPUs"
            )
        if n_devices != 1:
            raise BackendUnavailableError(
                "the OpenMP backend drives a single (host) device; "
                "use num_threads to scale it"
            )
        if kwargs.get("fault_plan") is not None:
            raise BackendUnavailableError(
                "the OpenMP backend has no simulated devices to inject faults into"
            )
        kwargs.pop("fault_plan", None)
        return cls(**kwargs)
    return cls(target=target, n_devices=n_devices, config=config, **kwargs)
