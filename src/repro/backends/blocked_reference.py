"""Reference executor for the blocked device kernel (§III-C, functional).

The device backends charge the *cost* of the blocked kernel but compute the
matvec through BLAS — numerically ideal, but it never exercises the
blocking algebra itself. This module is the missing functional mirror: it
executes ``K_bar @ v`` exactly the way the CUDA kernel does,

* over the **padded** SoA matrix (§III-A / §III-C1: padding removes
  boundary checks — zero rows are provably neutral),
* tile by tile over the **upper-triangular tile grid**, mirroring each
  off-diagonal tile's contribution into both row blocks (§III-C1:
  "computing only the upper triangular matrix ... omitted entries are
  mirrored"),
* accumulating per-tile partial products like a thread block accumulating
  through shared memory, with the feature dimension processed in chunks of
  ``feature_chunk`` columns (§III-C3's staged loads).

A property test pins it against the BLAS matvec; the diagonal-tile
handling (only the strict upper triangle of a diagonal tile is mirrored)
is where naive implementations double-count — precisely the bug class this
reference exists to catch.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..exceptions import KernelLaunchError
from ..parallel.partition import tile_grid
from ..types import KernelType
from .kernels import KernelConfig
from .soa import transform_to_soa

__all__ = ["blocked_kernel_matvec"]


def _tile_kernel(
    a: np.ndarray,
    b: np.ndarray,
    kernel: KernelType,
    gamma: Optional[float],
    degree: int,
    coef0: float,
    feature_chunk: int,
) -> np.ndarray:
    """Kernel values of one tile, accumulating features chunk-wise.

    The chunked accumulation mirrors the shared-memory staging: a thread
    block never holds more than ``feature_chunk`` columns of either side.
    """
    dots = np.zeros((a.shape[0], b.shape[0]))
    for start in range(0, a.shape[1], feature_chunk):
        stop = min(start + feature_chunk, a.shape[1])
        dots += a[:, start:stop] @ b[:, start:stop].T
    if kernel is KernelType.LINEAR:
        return dots
    if kernel is KernelType.POLYNOMIAL:
        return (gamma * dots + coef0) ** degree
    if kernel is KernelType.SIGMOID:
        return np.tanh(gamma * dots + coef0)
    # RBF needs the squared distances; accumulate the self-products the
    # same chunked way.
    aa = np.zeros(a.shape[0])
    bb = np.zeros(b.shape[0])
    for start in range(0, a.shape[1], feature_chunk):
        stop = min(start + feature_chunk, a.shape[1])
        aa += np.einsum("ij,ij->i", a[:, start:stop], a[:, start:stop])
        bb += np.einsum("ij,ij->i", b[:, start:stop], b[:, start:stop])
    d2 = np.maximum(aa[:, None] + bb[None, :] - 2.0 * dots, 0.0)
    return np.exp(-gamma * d2)


def blocked_kernel_matvec(
    X_bar: np.ndarray,
    v: np.ndarray,
    kernel: KernelType = KernelType.LINEAR,
    *,
    config: Optional[KernelConfig] = None,
    gamma: Optional[float] = None,
    degree: int = 3,
    coef0: float = 0.0,
    feature_chunk: int = 16,
) -> np.ndarray:
    """``K_bar @ v`` computed exactly like the blocked device kernel.

    Parameters
    ----------
    X_bar:
        The reduced training points (first m-1 rows), row-major.
    v:
        Input vector of length ``m-1``.
    kernel, gamma, degree, coef0:
        Kernel selection and coefficients.
    config:
        Blocking configuration; ``config.tile`` is the tile edge and also
        the padding granularity. ``use_symmetry=False`` walks the full tile
        grid instead (for differential testing of the mirroring).
    feature_chunk:
        Columns staged per shared-memory load (§III-C3).
    """
    config = config or KernelConfig()
    kernel = KernelType.from_name(kernel)
    if feature_chunk < 1:
        raise KernelLaunchError("feature_chunk must be positive")
    X_bar = np.asarray(X_bar, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64).ravel()
    n = X_bar.shape[0]
    if v.shape[0] != n:
        raise KernelLaunchError(
            f"vector length {v.shape[0]} does not match {n} rows"
        )
    if kernel is KernelType.RBF and n > 0:
        # Padding rows are zero vectors; exp(-gamma*|0-x|^2) != 0, so the
        # radial kernel is *not* padding-neutral for K@v — the real kernels
        # guard the write-back by row index instead. We emulate that by
        # masking padded rows out of the accumulation below.
        pass

    soa = transform_to_soa(X_bar, block_size=config.tile)
    padded = soa.data  # (padded_rows, d), zero beyond n
    v_padded = np.zeros(padded.shape[0])
    v_padded[:n] = v
    out = np.zeros(padded.shape[0])

    tiles = tile_grid(
        padded.shape[0], padded.shape[0], config.tile, triangular=config.use_symmetry
    )
    for rows, cols in tiles:
        a = padded[rows.slice]
        b = padded[cols.slice]
        K_tile = _tile_kernel(a, b, kernel, gamma, degree, coef0, feature_chunk)
        # Guard against padded rows/cols for kernels that are not zero at
        # the zero vector (rbf, sigmoid with coef0, polynomial with coef0):
        # the real kernel's boundary-free tiles rely on the padding value
        # being *ignored on write-back*, which the row masks reproduce.
        row_valid = np.arange(rows.start, rows.stop) < n
        col_valid = np.arange(cols.start, cols.stop) < n
        K_tile = K_tile * row_valid[:, None] * col_valid[None, :]

        out[rows.slice] += K_tile @ v_padded[cols.slice]
        if config.use_symmetry and rows.start != cols.start:
            # Mirror the off-diagonal tile (the omitted lower-triangular twin).
            out[cols.slice] += K_tile.T @ v_padded[rows.slice]
        elif config.use_symmetry:
            # Diagonal tile: its strict lower triangle was computed as the
            # transpose of the strict upper triangle — already included in
            # K_tile because diagonal tiles are evaluated in full. Nothing
            # to mirror.
            pass
    return out[:n]
