"""Q_tilde operator executing on (simulated) devices.

:class:`DeviceQMatrix` is the device-backend counterpart of
:class:`repro.core.qmatrix.ImplicitQMatrix`: functionally it computes the
exact same matrix-free ``Q_tilde @ v``, but it mirrors the full device
choreography of the C++ backends:

* setup transforms the data into the padded SoA layout (§III-A), splits it
  feature-wise across the devices for the linear kernel (§III-C5),
  allocates the device buffers, and charges the host->device copies;
* the cached ``q`` vector is computed by one simulated kernel per device
  (§III-C2);
* each CG matvec charges one blocked implicit-matvec kernel per device plus
  the BLAS-1 vector-update kernel; under multi-GPU execution the per-device
  partial results travel back over PCIe and are summed on the host
  (§III-C5: no direct GPU-to-GPU communication);
* teardown charges the final solution write-back.

The per-device clocks therefore advance exactly as often and by as much as
the real devices would be busy; :meth:`device_time` (the max over the
devices, they run concurrently) is what the GPU experiments report.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..core.qmatrix import QMatrixBase
from ..exceptions import DeviceError, DeviceLostError
from ..parallel.partition import feature_split
from ..parallel.reduction import sum_partials
from ..parameter import Parameter
from ..simgpu.device import SimulatedDevice
from ..types import KernelType
from .kernels import KernelConfig, matvec_costs, q_vector_costs, vector_ops_costs
from .soa import SoAMatrix, transform_to_soa

__all__ = ["DeviceQMatrix"]


class DeviceQMatrix(QMatrixBase):
    """Matrix-free Q_tilde whose matvecs run on simulated devices.

    Parameters
    ----------
    X, y, param:
        Training data and hyper-parameters (as for every Q matrix).
    devices:
        One or more :class:`SimulatedDevice`. More than one device requires
        the linear kernel — the feature-wise split relies on the kernel's
        linearity (§III-C5); the polynomial and radial kernels raise, as in
        PLSSVM v1.0.1.
    config:
        Blocked-kernel tuning knobs; also drives the cost accounting.
    tile_rows:
        Host-side row tiling for the non-linear kernels (memory bound).
    feature_ranges:
        Optional explicit feature slices per device, overriding the default
        equal split — the heterogeneous backend passes throughput-weighted
        slices here (load balancing, a paper §V long-term goal). Must tile
        ``[0, num_features)`` contiguously.
    """

    def __init__(
        self,
        X: np.ndarray,
        y: np.ndarray,
        param: Parameter,
        devices: Sequence[SimulatedDevice],
        *,
        config: Optional[KernelConfig] = None,
        tile_rows: int = 1024,
        feature_ranges=None,
    ) -> None:
        super().__init__(X, y, param)
        if len(devices) == 0:
            raise DeviceError("at least one device is required")
        if len(devices) > 1 and self.param.kernel is not KernelType.LINEAR:
            raise DeviceError(
                "multi-device execution currently supports only the linear kernel "
                "(the polynomial and radial kernels are single-device, as in PLSSVM v1.0.1)"
            )
        self.devices: List[SimulatedDevice] = list(devices)
        self.config = config or KernelConfig()
        self.tile_rows = int(tile_rows)
        # The paper's single template parameter: FP32 halves every byte
        # count and runs on the single precision pipeline.
        self._value_bytes = int(self.param.dtype.itemsize)
        self._precision = "fp32" if self._value_bytes == 4 else "fp64"
        n = self.shape[0]

        # SoA transform of the *reduced* data (the first m-1 points drive
        # the matvec; the last point only appears through q_bar / q_mm).
        self.soa: SoAMatrix = transform_to_soa(self.X_bar, block_size=self.config.tile)
        if feature_ranges is not None:
            splits = list(feature_ranges)
            if sum(len(r) for r in splits) != self.soa.num_features:
                raise DeviceError(
                    "feature_ranges must cover every feature exactly once"
                )
            if len(splits) > len(self.devices):
                raise DeviceError("more feature slices than devices")
        else:
            splits = feature_split(self.soa.num_features, len(self.devices))
        # Fewer feature columns than devices: the surplus devices stay idle.
        self.active_devices = self.devices[: len(splits)]
        self._slices = [s.slice for s in splits]
        self._device_data = [self.soa.feature_slice(sl) for sl in self._slices]

        for device, slab in zip(self.active_devices, self._device_data):
            device.initialize()
            device.malloc("data", slab.nbytes)
            device.malloc("q_vector", n * self._value_bytes)
            # CG working set: x, r, d, Ad plus the rhs.
            device.malloc("cg_vectors", 5 * n * self._value_bytes)
            device.copy_to_device(slab.nbytes)
            local_d = slab.num_features
            if self.config.cache_q:
                costs = q_vector_costs(
                    n, local_d, self.param.kernel, self.config,
                    value_bytes=self._value_bytes,
                )
                device.launch(
                    "device_kernel_q",
                    flops=costs.flops,
                    global_bytes=costs.global_bytes,
                    shared_bytes=costs.shared_bytes,
                    grid_blocks=costs.grid_blocks,
                    block_threads=costs.block_threads,
                    precision=self._precision,
                )

    # -- fault recovery ---------------------------------------------------------

    def handle_device_loss(self, device: SimulatedDevice) -> None:
        """Redistribute a lost device's feature slice onto the survivors.

        Graceful degradation (§III-D): the feature-wise split only needs
        the kernel's linearity, not a fixed device count, so losing a card
        mid-solve is recoverable by re-running the split over the surviving
        devices and re-uploading their (larger) slabs. The cached ``q``
        partials depend on each device's feature slice, so they are
        recomputed too. Every survivor is charged its modeled
        ``fault_recovery_s`` (context re-creation after a sibling died).

        Raises :class:`~repro.exceptions.DeviceLostError` with
        ``device=None`` when no devices survive — that is unrecoverable.
        Called by :func:`repro.core.resilience.resilient_solve`; cascading
        faults during the re-upload propagate and are recovered in turn.
        """
        survivors = [
            dev for dev in self.active_devices if dev is not device and not dev.lost
        ]
        if not survivors:
            raise DeviceLostError(
                f"device {device.spec.name!r} (id {device.device_id}) was the "
                "last one standing; cannot redistribute",
                device=None,
            )
        n = self.shape[0]
        splits = feature_split(self.soa.num_features, len(survivors))
        self.active_devices = survivors[: len(splits)]
        self._slices = [s.slice for s in splits]
        self._device_data = [self.soa.feature_slice(sl) for sl in self._slices]
        for dev, slab in zip(self.active_devices, self._device_data):
            dev.clock += dev.spec.fault_recovery_s
            dev.free("data")
            dev.malloc("data", slab.nbytes)
            dev.copy_to_device(slab.nbytes)
            if self.config.cache_q:
                costs = q_vector_costs(
                    n, slab.num_features, self.param.kernel, self.config,
                    value_bytes=self._value_bytes,
                )
                dev.launch(
                    "device_kernel_q",
                    flops=costs.flops,
                    global_bytes=costs.global_bytes,
                    shared_bytes=costs.shared_bytes,
                    grid_blocks=costs.grid_blocks,
                    block_threads=costs.block_threads,
                    precision=self._precision,
                )

    # -- device-side matvec -----------------------------------------------------

    def _charge_matvec(self) -> None:
        n = self.shape[0]
        multi = len(self.active_devices) > 1
        for device, slab in zip(self.active_devices, self._device_data):
            costs = matvec_costs(
                n, slab.num_features, self.param.kernel, self.config,
                value_bytes=self._value_bytes,
            )
            device.launch(
                "device_kernel_linear" if self.param.kernel is KernelType.LINEAR
                else f"device_kernel_{self.param.kernel}",
                flops=costs.flops,
                global_bytes=costs.global_bytes,
                shared_bytes=costs.shared_bytes,
                grid_blocks=costs.grid_blocks,
                block_threads=costs.block_threads,
                precision=self._precision,
            )
            vops = vector_ops_costs(n, value_bytes=self._value_bytes)
            device.launch(
                "device_kernel_vector_ops",
                flops=vops.flops,
                global_bytes=vops.global_bytes,
                shared_bytes=vops.shared_bytes,
                grid_blocks=vops.grid_blocks,
                block_threads=vops.block_threads,
                precision=self._precision,
            )
            if multi:
                # Partial result to the host and the reduced vector back.
                device.copy_from_device(n * self._value_bytes)
                device.copy_to_device(n * self._value_bytes)

    def _kernel_matvec(self, v: np.ndarray) -> np.ndarray:
        self._charge_matvec()
        if self.param.kernel is KernelType.LINEAR:
            partials = []
            for slab in self._device_data:
                local = slab.logical
                partials.append(local @ (local.T @ v))
            if len(partials) == 1:
                return partials[0]
            return sum_partials(partials)
        # Non-linear kernels: single device, host-tiled evaluation.
        from ..core.kernels import kernel_matrix_tiles

        out = np.empty_like(v)
        kw = self.param.kernel_kwargs()
        for rows, tile in kernel_matrix_tiles(
            self.X_bar, self.X_bar, self.param.kernel, tile_rows=self.tile_rows, **kw
        ):
            out[rows] = tile @ v
        return out

    # -- lifecycle / reporting -----------------------------------------------------

    def writeback(self) -> None:
        """Charge the final device->host copy of the solution vector."""
        n = self.shape[0]
        for device in self.active_devices:
            device.copy_from_device(n * self._value_bytes)

    def device_time(self) -> float:
        """Modeled elapsed device time (devices run concurrently -> max clock)."""
        return max(device.clock for device in self.active_devices)

    def total_device_launches(self) -> int:
        return sum(device.counters.launches for device in self.active_devices)

    def memory_per_device_gib(self) -> List[float]:
        """Peak simulated memory footprint per active device, in GiB."""
        return [d.peak_allocated_bytes / 1024**3 for d in self.active_devices]
