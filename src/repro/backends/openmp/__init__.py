"""OpenMP (CPU) backend: real shared-memory parallelism on the host."""

from .backend import OpenMPCSVM, ThreadedQMatrix

__all__ = ["OpenMPCSVM", "ThreadedQMatrix"]
