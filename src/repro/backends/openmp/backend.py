"""OpenMP backend: parallel implicit matvecs on host threads.

This is the one backend that executes on real hardware rather than the
simulator. The implicit ``K_bar @ v`` product is partitioned into
contiguous row blocks processed by a persistent thread pool
(:mod:`repro.parallel.thread_pool`) — the direct translation of the C++
backend's ``#pragma omp parallel for``. Inside each block the arithmetic is
a NumPy GEMV, which releases the GIL, so blocks genuinely overlap on
multi-core hosts.

Mirroring the paper, this backend "is currently not as well optimized as
the GPU implementations": it performs the straightforward row-blocked
product without the blocking/caching machinery of the device kernels.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...core.kernels import kernel_matrix
from ...core.qmatrix import QMatrixBase
from ...parallel.partition import BlockRange
from ...parallel.thread_pool import ThreadPool
from ...parameter import Parameter
from ...profiling import ComponentTimer
from ...types import BackendType, KernelType
from ..base import CSVM

__all__ = ["OpenMPCSVM", "ThreadedQMatrix"]


class ThreadedQMatrix(QMatrixBase):
    """Matrix-free Q_tilde with a row-block-parallel kernel matvec."""

    def __init__(
        self,
        X: np.ndarray,
        y: np.ndarray,
        param: Parameter,
        pool: ThreadPool,
        *,
        tile_rows: int = 512,
    ) -> None:
        super().__init__(X, y, param)
        self.pool = pool
        self.tile_rows = int(tile_rows)

    def _kernel_matvec(self, v: np.ndarray) -> np.ndarray:
        n = self.shape[0]
        out = np.empty_like(v)
        if self.param.kernel is KernelType.LINEAR:
            # X_bar.T @ v is a shared reduction; compute it once, then each
            # worker produces its row block of X_bar @ w.
            w = self.X_bar.T @ v

            def linear_block(block: BlockRange) -> None:
                out[block.slice] = self.X_bar[block.slice] @ w

            self.pool.map_blocks(linear_block, n)
            return out

        kw = self.param.kernel_kwargs()

        def kernel_block(block: BlockRange) -> None:
            # Recompute the kernel rows of this block tile-by-tile so each
            # worker's live memory stays bounded (implicit representation).
            for start in range(block.start, block.stop, self.tile_rows):
                rows = slice(start, min(start + self.tile_rows, block.stop))
                tile = kernel_matrix(self.X_bar[rows], self.X_bar, self.param.kernel, **kw)
                out[rows] = tile @ v

        self.pool.map_blocks(kernel_block, n)
        return out


class OpenMPCSVM(CSVM):
    """CPU backend driven by a persistent thread pool.

    Parameters
    ----------
    num_threads:
        Worker count; ``None`` uses ``PLSSVM_NUM_THREADS`` /
        ``OMP_NUM_THREADS`` / the machine's CPU count — the same resolution
        order as an OpenMP runtime.
    tile_rows:
        Host row tiling for the non-linear kernels.
    """

    backend_type = BackendType.OPENMP

    def __init__(
        self, *, num_threads: Optional[int] = None, tile_rows: int = 512
    ) -> None:
        self.pool = ThreadPool(num_threads)
        self.tile_rows = int(tile_rows)

    @property
    def num_threads(self) -> int:
        return self.pool.num_threads

    def create_qmatrix(
        self, X: np.ndarray, y: np.ndarray, param: Parameter
    ) -> ThreadedQMatrix:
        return ThreadedQMatrix(X, y, param, self.pool, tile_rows=self.tile_rows)

    def finalize(self, qmat: QMatrixBase, timings: ComponentTimer) -> None:
        # Host backend: wall-clock time in the 'cg' section is already real.
        return None

    def describe(self) -> str:
        return f"openmp backend with {self.pool.num_threads} thread(s)"
