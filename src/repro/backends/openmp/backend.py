"""OpenMP backend: parallel implicit matvecs on host threads.

This is the one backend that executes on real hardware rather than the
simulator. The implicit ``K_bar @ v`` product runs on the shared
kernel-tile pipeline (:mod:`repro.core.tile_pipeline`) driven by a
persistent thread pool (:mod:`repro.parallel.thread_pool`) — the direct
translation of the C++ backend's ``#pragma omp parallel for``, plus the
cross-iteration tile cache and precomputed RBF row norms the pipeline
brings along. Inside each tile the arithmetic is a NumPy GEMM, which
releases the GIL, so tiles genuinely overlap on multi-core hosts.

The linear kernel keeps its factorized two-GEMV form (``X_bar @ (X_bar.T
@ v)``): materializing kernel tiles for it would turn an O(m d) product
into O(m²).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...core.qmatrix import QMatrixBase
from ...core.tile_pipeline import DEFAULT_TILE_CACHE_MB, TilePipeline
from ...parallel.partition import BlockRange
from ...parallel.thread_pool import ThreadPool
from ...parameter import Parameter
from ...profiling import ComponentTimer
from ...types import BackendType, KernelType
from ..base import CSVM

__all__ = ["OpenMPCSVM", "ThreadedQMatrix"]


class ThreadedQMatrix(QMatrixBase):
    """Matrix-free Q_tilde with a tile-pipeline-parallel kernel matvec."""

    def __init__(
        self,
        X: np.ndarray,
        y: np.ndarray,
        param: Parameter,
        pool: ThreadPool,
        *,
        tile_rows: int = 512,
        tile_cache_mb: Optional[float] = None,
        compute_dtype=None,
    ) -> None:
        super().__init__(X, y, param)
        self.pool = pool
        self.tile_rows = int(tile_rows)
        self.compute_dtype = compute_dtype
        # self.param has gamma resolved for the feature count (base __init__).
        if self.param.kernel is KernelType.LINEAR:
            self.pipeline: Optional[TilePipeline] = None
        else:
            kw = self.param.kernel_kwargs()
            self.pipeline = TilePipeline(
                self.X_bar,
                self.param.kernel,
                gamma=kw.get("gamma"),
                degree=kw.get("degree", 3),
                coef0=kw.get("coef0", 0.0),
                tile_rows=self.tile_rows,
                pool=pool,
                cache_mb=(
                    DEFAULT_TILE_CACHE_MB if tile_cache_mb is None else tile_cache_mb
                ),
                dtype=self.dtype,
                compute_dtype=compute_dtype,
            )

    def _linear_multi(self, V: np.ndarray) -> np.ndarray:
        # X_bar.T @ V is a shared reduction; compute it once, then each
        # worker produces its row block of X_bar @ W.
        W = self.X_bar.T @ V
        out = np.empty((self.shape[0], *W.shape[1:]), dtype=self.dtype)

        def linear_block(block: BlockRange) -> None:
            out[block.slice] = self.X_bar[block.slice] @ W

        self.pool.map_blocks(linear_block, self.shape[0])
        return out

    def _kernel_matvec(self, v: np.ndarray) -> np.ndarray:
        if self.pipeline is None:
            return self._linear_multi(v)
        return self.pipeline.sweep(v)

    def _kernel_matvec_multi(self, V: np.ndarray) -> np.ndarray:
        if self.pipeline is None:
            return self._linear_multi(V)
        return self.pipeline.sweep(V)


class OpenMPCSVM(CSVM):
    """CPU backend driven by a persistent thread pool.

    Parameters
    ----------
    num_threads:
        Worker count; ``None`` uses ``PLSSVM_NUM_THREADS`` /
        ``OMP_NUM_THREADS`` / the machine's CPU count — the same resolution
        order as an OpenMP runtime.
    tile_rows:
        Host row tiling for the non-linear kernels.
    tile_cache_mb:
        Byte budget (MiB) of the cross-iteration kernel-tile cache;
        ``0`` disables it, ``None`` keeps the pipeline default.
    compute_dtype:
        Mixed precision: evaluate and cache kernel tiles in this dtype
        (e.g. ``float32``) while the CG recursion stays in the working
        precision; ``None`` keeps tiles in the working precision.
    """

    backend_type = BackendType.OPENMP

    def __init__(
        self,
        *,
        num_threads: Optional[int] = None,
        tile_rows: int = 512,
        tile_cache_mb: Optional[float] = None,
        compute_dtype=None,
    ) -> None:
        self.pool = ThreadPool(num_threads)
        self.tile_rows = int(tile_rows)
        self.tile_cache_mb = tile_cache_mb
        self.compute_dtype = compute_dtype

    @property
    def num_threads(self) -> int:
        return self.pool.num_threads

    def create_qmatrix(
        self, X: np.ndarray, y: np.ndarray, param: Parameter
    ) -> ThreadedQMatrix:
        return ThreadedQMatrix(
            X,
            y,
            param,
            self.pool,
            tile_rows=self.tile_rows,
            tile_cache_mb=self.tile_cache_mb,
            compute_dtype=self.compute_dtype,
        )

    def finalize(self, qmat: QMatrixBase, timings: ComponentTimer) -> None:
        # Host backend: wall-clock time in the 'cg' section is already real.
        return None

    def describe(self) -> str:
        return f"openmp backend with {self.pool.num_threads} thread(s)"
