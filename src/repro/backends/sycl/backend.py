"""SYCL backend with selectable implementation (hipSYCL or DPC++).

The paper uses hipSYCL on NVIDIA/AMD hardware and DPC++ on Intel. Table I
exposes a sharp implementation effect: hipSYCL is close to OpenCL on
compute capability >= 7.0 but over 3x slower than CUDA on older NVIDIA
GPUs (P100), and DPC++ is 2x slower than OpenCL on the Intel iGPU. Those
effects live in the per-device efficiency tables (keys ``"sycl_hipsycl"``
and ``"sycl_dpcpp"``); this class only selects the key.
"""

from __future__ import annotations

from typing import Optional, Union

from ...simgpu.spec import DeviceSpec
from ...types import BackendType, SyclImplementation, TargetPlatform
from ..base import SimulatedDeviceCSVM
from ..kernels import KernelConfig

__all__ = ["SYCLCSVM"]


class SYCLCSVM(SimulatedDeviceCSVM):
    """Simulated SYCL backend.

    Parameters
    ----------
    implementation:
        ``"hipsycl"`` (default on NVIDIA/AMD) or ``"dpcpp"`` (default on
        Intel); ``None`` picks per-platform like the paper's setup.
    """

    backend_type = BackendType.SYCL
    supported_platforms = (
        TargetPlatform.GPU_NVIDIA,
        TargetPlatform.GPU_AMD,
        TargetPlatform.GPU_INTEL,
        TargetPlatform.CPU,
    )
    efficiency_key = "sycl_hipsycl"

    def __init__(
        self,
        *,
        implementation: Union[None, str, SyclImplementation] = None,
        target: TargetPlatform = TargetPlatform.AUTOMATIC,
        n_devices: int = 1,
        device: Union[None, str, DeviceSpec] = None,
        config: Optional[KernelConfig] = None,
    ) -> None:
        if implementation is None:
            # Paper setup: DPC++ for Intel targets (GPU and CPU), hipSYCL
            # otherwise.
            impl = (
                SyclImplementation.DPCPP
                if target in (TargetPlatform.GPU_INTEL, TargetPlatform.CPU)
                else SyclImplementation.HIPSYCL
            )
        else:
            impl = SyclImplementation.from_name(implementation)
        self.implementation = impl
        self.efficiency_key = f"sycl_{impl.value}"
        super().__init__(target=target, n_devices=n_devices, device=device, config=config)

    def describe(self) -> str:
        return (
            f"sycl ({self.implementation}) backend on {len(self.devices)}x "
            f"{self.spec.name} (simulated)"
        )
