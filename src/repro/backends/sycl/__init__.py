"""SYCL backend (simulated; hipSYCL and DPC++ flavours)."""

from .backend import SYCLCSVM

__all__ = ["SYCLCSVM"]
