"""Backend framework base classes (the Python ``plssvm::csvm`` hierarchy).

A backend owns the execution of the implicit matrix-vector products inside
CG. Every backend exposes the same two-method surface:

* :meth:`CSVM.create_qmatrix` — build the ``Q_tilde`` operator bound to the
  backend's execution resources;
* :meth:`CSVM.finalize` — after the solve, fold backend-specific timing
  (e.g. simulated device seconds) into the component timer.

:class:`SimulatedDeviceCSVM` implements the shared logic of the four device
backends (CUDA / OpenCL / SYCL / device-OpenCL-on-CPU): device discovery
against the catalog, multi-device setup, and simulated-time reporting. The
concrete backends only differ in which platforms they may target and which
efficiency key prices their kernels — exactly the difference between the
C++ backends, which share all optimizations but compile through different
toolchains.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence, Union

import numpy as np

from ..core.qmatrix import QMatrixBase
from ..exceptions import BackendUnavailableError, DeviceError
from ..parameter import Parameter
from ..profiling import ComponentTimer
from ..simgpu.catalog import default_gpu, devices_for_platform, get_device_spec
from ..simgpu.device import SimulatedDevice
from ..simgpu.spec import DeviceSpec
from ..telemetry.context import current_context
from ..types import BackendType, TargetPlatform
from .device_qmatrix import DeviceQMatrix
from .kernels import KernelConfig

__all__ = ["CSVM", "SimulatedDeviceCSVM", "report_device_summaries"]


def report_device_summaries(devices: Sequence[SimulatedDevice]) -> None:
    """Push each device's end-of-solve summary into the active context.

    Called from the backends' ``finalize`` so a fit's ``report_`` carries
    the per-device modeled times Fig. 2-style comparisons need. Lost
    devices are included (flagged), since their partial work and loss are
    part of the fit's story.
    """
    ctx = current_context()
    for device in devices:
        summary = {
            "device_id": device.device_id,
            "name": device.spec.name,
            "lost": device.lost,
        }
        summary.update(device.summary())
        ctx.add_device_summary(summary)


class CSVM(abc.ABC):
    """Abstract backend interface."""

    backend_type: BackendType

    @abc.abstractmethod
    def create_qmatrix(
        self, X: np.ndarray, y: np.ndarray, param: Parameter
    ) -> QMatrixBase:
        """Build the Q_tilde operator for this backend."""

    def finalize(self, qmat: QMatrixBase, timings: ComponentTimer) -> None:
        """Fold backend-specific timing into ``timings`` (default: nothing)."""

    @property
    def num_devices(self) -> int:
        """Number of compute devices this backend drives (1 for host backends)."""
        return 1

    def describe(self) -> str:
        """One-line description for logs and the CLI's verbose output."""
        return f"{self.backend_type} backend"


class SimulatedDeviceCSVM(CSVM):
    """Shared implementation of the device (GPU) backends.

    Parameters
    ----------
    target:
        Vendor platform to discover devices on; ``AUTOMATIC`` resolves to
        the backend's preferred platform (NVIDIA for CUDA, any for OpenCL).
    n_devices:
        How many devices of that platform to use. Devices are homogeneous
        (the paper's multi-GPU node has four identical A100s).
    device:
        Explicit catalog key or :class:`DeviceSpec`, overriding discovery —
        this is how the Table I experiments pin specific GPUs.
    config:
        Blocked-kernel tuning knobs shared by all devices.
    fault_plan:
        Optional :class:`repro.simgpu.FaultPlan` attached to every device
        (fault-injection experiments; see :mod:`repro.simgpu.faults`).
    """

    #: Platforms this backend can target; subclasses override.
    supported_platforms: Sequence[TargetPlatform] = ()
    #: Efficiency key pricing this backend's kernels; subclasses override.
    efficiency_key: str = ""

    def __init__(
        self,
        *,
        target: TargetPlatform = TargetPlatform.AUTOMATIC,
        n_devices: int = 1,
        device: Union[None, str, DeviceSpec] = None,
        config: Optional[KernelConfig] = None,
        fault_plan=None,
    ) -> None:
        if n_devices < 1:
            raise DeviceError("n_devices must be positive")
        self.config = config or KernelConfig()
        self.spec = self._resolve_spec(target, device)
        self.devices: List[SimulatedDevice] = [
            SimulatedDevice(self.spec, self.efficiency_key, device_id=i)
            for i in range(n_devices)
        ]
        self.fault_plan = fault_plan
        for dev in self.devices:
            dev.attach_fault_plan(fault_plan)
        self._last_qmatrix: Optional[DeviceQMatrix] = None

    # -- device discovery -------------------------------------------------------

    def _resolve_spec(
        self, target: TargetPlatform, device: Union[None, str, DeviceSpec]
    ) -> DeviceSpec:
        if isinstance(device, DeviceSpec):
            spec = device
        elif isinstance(device, str):
            spec = get_device_spec(device)
        else:
            spec = self._discover(target)
        if spec.platform not in self.supported_platforms:
            raise BackendUnavailableError(
                f"backend {self.backend_type} cannot target platform {spec.platform}"
            )
        if not spec.supports(self.efficiency_key):
            raise BackendUnavailableError(
                f"device {spec.name!r} has no {self.efficiency_key!r} support"
            )
        return spec

    def _discover(self, target: TargetPlatform) -> DeviceSpec:
        if target is TargetPlatform.AUTOMATIC:
            candidates = [
                s
                for p in self.supported_platforms
                for s in devices_for_platform(p)
                if s.supports(self.efficiency_key)
            ]
            if not candidates:
                raise BackendUnavailableError(
                    f"no simulated device supports backend {self.backend_type}"
                )
            preferred = default_gpu()
            if preferred in candidates:
                return preferred
            # Deterministic choice: fastest remaining device.
            return max(candidates, key=lambda s: s.fp64_tflops)
        candidates = [
            s for s in devices_for_platform(target) if s.supports(self.efficiency_key)
        ]
        if not candidates:
            raise BackendUnavailableError(
                f"no {target} device supports backend {self.backend_type}"
            )
        return max(candidates, key=lambda s: s.fp64_tflops)

    # -- CSVM interface -------------------------------------------------------

    @property
    def num_devices(self) -> int:
        return len(self.devices)

    def create_qmatrix(
        self, X: np.ndarray, y: np.ndarray, param: Parameter
    ) -> DeviceQMatrix:
        for device in self.devices:
            device.reset()
        qmat = DeviceQMatrix(X, y, param, self.devices, config=self.config)
        self._last_qmatrix = qmat
        return qmat

    def finalize(self, qmat: QMatrixBase, timings: ComponentTimer) -> None:
        if isinstance(qmat, DeviceQMatrix):
            qmat.writeback()
            timings.section("cg_device").add(qmat.device_time())
            report_device_summaries(qmat.devices)

    def device_time(self) -> float:
        """Simulated device seconds of the most recent training run."""
        if self._last_qmatrix is None:
            raise DeviceError("no training run has been executed yet")
        return self._last_qmatrix.device_time()

    def memory_per_device_gib(self) -> List[float]:
        """Peak simulated memory per device of the most recent training run."""
        if self._last_qmatrix is None:
            raise DeviceError("no training run has been executed yet")
        return self._last_qmatrix.memory_per_device_gib()

    def describe(self) -> str:
        return (
            f"{self.backend_type} backend on {len(self.devices)}x {self.spec.name} "
            f"(simulated, efficiency key {self.efficiency_key!r})"
        )
