"""Exception hierarchy for the PLSSVM reproduction.

Mirrors the exception classes of the C++ PLSSVM library
(``plssvm::exception`` and friends) so that error handling in the Python
port feels familiar to users of the original.
"""

from __future__ import annotations

__all__ = [
    "PLSSVMError",
    "InvalidParameterError",
    "FileFormatError",
    "ModelFormatError",
    "ScalingError",
    "BackendUnavailableError",
    "DeviceError",
    "DeviceMemoryError",
    "DeviceLostError",
    "TransientDeviceError",
    "KernelLaunchError",
    "ConvergenceWarning",
    "NotFittedError",
    "DataError",
    "TelemetryError",
    "ServingError",
    "ServerOverloadedError",
    "ModelNotFoundError",
    "CampaignError",
    "RegressionGateError",
]


class PLSSVMError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class InvalidParameterError(PLSSVMError, ValueError):
    """An SVM hyper-parameter is outside its valid domain.

    Raised e.g. for ``C <= 0``, ``gamma <= 0`` for the radial kernel, or an
    unknown kernel/backend name.
    """


class FileFormatError(PLSSVMError, ValueError):
    """A data file does not conform to the LIBSVM sparse file format."""


class ModelFormatError(FileFormatError):
    """A model file does not conform to the LIBSVM model format."""


class ScalingError(PLSSVMError, ValueError):
    """A scale-factor file is inconsistent with the data it is applied to."""


class BackendUnavailableError(PLSSVMError, RuntimeError):
    """The requested backend is not available on this system.

    In the C++ library a backend is compiled in only when the matching
    toolchain exists; here a backend is unavailable when its (simulated)
    platform has no devices.
    """


class DeviceError(PLSSVMError, RuntimeError):
    """Generic failure of a (simulated) compute device."""


class DeviceMemoryError(DeviceError):
    """A device allocation exceeds the device's memory capacity."""


class KernelLaunchError(DeviceError):
    """A device kernel was launched with an invalid configuration."""


class DeviceLostError(DeviceError):
    """A (simulated) device dropped off the bus and will not come back.

    Attributes
    ----------
    device:
        The :class:`repro.simgpu.SimulatedDevice` that was lost, when
        known — the failover path uses it to redistribute work over the
        survivors. ``None`` marks the loss as unrecoverable (e.g. the last
        device of a context died).
    checkpoint:
        Set by the CG solvers when the loss interrupted a solve: the last
        :class:`repro.core.resilience.CGCheckpoint`, so the caller can
        resume instead of restarting from iteration 0.
    """

    def __init__(self, message: str, *, device=None) -> None:
        super().__init__(message)
        self.device = device
        self.checkpoint = None


class TransientDeviceError(DeviceError):
    """A recoverable device hiccup (ECC retry, driver timeout, throttle).

    Retrying the interrupted operation — after a backoff — is expected to
    succeed; :func:`repro.core.resilience.resilient_solve` does exactly
    that, with a bounded retry budget. Carries the same ``device`` /
    ``checkpoint`` attributes as :class:`DeviceLostError`.
    """

    def __init__(self, message: str, *, device=None) -> None:
        super().__init__(message)
        self.device = device
        self.checkpoint = None


class ConvergenceWarning(UserWarning):
    """The iterative solver stopped before reaching the requested residual."""


class NotFittedError(PLSSVMError, RuntimeError):
    """Model queried (predict/score/save) before :meth:`fit` was called."""


class DataError(PLSSVMError, ValueError):
    """Training/test data is malformed (shape mismatch, non-binary labels, ...)."""


class TelemetryError(PLSSVMError, ValueError):
    """A telemetry artifact (training report, trace) fails validation.

    Raised by :func:`repro.telemetry.validate_report` when a serialized
    :class:`~repro.telemetry.TrainingReport` does not conform to the
    report schema — the CI smoke step turns this into a hard failure.
    """


class ServingError(PLSSVMError, RuntimeError):
    """Base class of the inference-serving subsystem's errors."""


class ServerOverloadedError(ServingError):
    """The micro-batcher's bounded queue is full; the request was rejected.

    This is the serving layer's backpressure signal: admitting the request
    would grow the queue past ``max_queue_rows``, so it is refused *before*
    any work happens. The HTTP front-end maps it to ``503`` with a
    ``Retry-After`` hint; in-process callers should back off and resubmit.

    Attributes
    ----------
    queued_rows / max_queue_rows:
        Queue occupancy at rejection time, for the caller's logging.
    """

    def __init__(self, message: str, *, queued_rows: int = 0, max_queue_rows: int = 0) -> None:
        super().__init__(message)
        self.queued_rows = queued_rows
        self.max_queue_rows = max_queue_rows


class ModelNotFoundError(ServingError, KeyError):
    """The requested model name is not registered with the serving registry."""


class CampaignError(PLSSVMError, ValueError):
    """A benchmark-campaign spec or results store is malformed.

    Raised by :mod:`repro.campaign` for unknown scenario names, parameter
    names a scenario does not accept, colliding cell keys, empty grid
    axes, and unreadable baseline/report artifacts — always naming the
    offending cell or field.
    """


class RegressionGateError(CampaignError):
    """A benchmark run regressed past a gate tolerance vs the baseline.

    Carries the list of :class:`repro.campaign.gate.GateViolation`
    records in ``violations``; ``plssvm-bench check`` maps this to a
    non-zero exit code so CI fails on perf/accuracy regressions.
    """

    def __init__(self, message: str, *, violations=None) -> None:
        super().__init__(message)
        self.violations = list(violations or [])
