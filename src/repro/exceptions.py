"""Exception hierarchy for the PLSSVM reproduction.

Mirrors the exception classes of the C++ PLSSVM library
(``plssvm::exception`` and friends) so that error handling in the Python
port feels familiar to users of the original.
"""

from __future__ import annotations

__all__ = [
    "PLSSVMError",
    "InvalidParameterError",
    "FileFormatError",
    "ModelFormatError",
    "ScalingError",
    "BackendUnavailableError",
    "DeviceError",
    "DeviceMemoryError",
    "KernelLaunchError",
    "ConvergenceWarning",
    "NotFittedError",
    "DataError",
]


class PLSSVMError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class InvalidParameterError(PLSSVMError, ValueError):
    """An SVM hyper-parameter is outside its valid domain.

    Raised e.g. for ``C <= 0``, ``gamma <= 0`` for the radial kernel, or an
    unknown kernel/backend name.
    """


class FileFormatError(PLSSVMError, ValueError):
    """A data file does not conform to the LIBSVM sparse file format."""


class ModelFormatError(FileFormatError):
    """A model file does not conform to the LIBSVM model format."""


class ScalingError(PLSSVMError, ValueError):
    """A scale-factor file is inconsistent with the data it is applied to."""


class BackendUnavailableError(PLSSVMError, RuntimeError):
    """The requested backend is not available on this system.

    In the C++ library a backend is compiled in only when the matching
    toolchain exists; here a backend is unavailable when its (simulated)
    platform has no devices.
    """


class DeviceError(PLSSVMError, RuntimeError):
    """Generic failure of a (simulated) compute device."""


class DeviceMemoryError(DeviceError):
    """A device allocation exceeds the device's memory capacity."""


class KernelLaunchError(DeviceError):
    """A device kernel was launched with an invalid configuration."""


class ConvergenceWarning(UserWarning):
    """The iterative solver stopped before reaching the requested residual."""


class NotFittedError(PLSSVMError, RuntimeError):
    """Model queried (predict/score/save) before :meth:`fit` was called."""


class DataError(PLSSVMError, ValueError):
    """Training/test data is malformed (shape mismatch, non-binary labels, ...)."""
