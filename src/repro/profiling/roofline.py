"""Roofline analysis over simulated kernel launch logs.

The paper's §IV-C profiling argument — ThunderSVM's best kernel reaches
2.4 % of FP64 peak while PLSSVM's matvec sustains 32 % — is a roofline
statement: where does each kernel sit relative to the device's compute
ceiling and memory slope? This module aggregates a
:class:`~repro.simgpu.device.SimulatedDevice`'s launch log into exactly
that view, per distinct kernel name:

* launch count, total time, total FLOPs and bytes;
* achieved GFLOP/s and arithmetic intensity (FLOPs per global byte);
* the *bound* classification: memory-bound when the intensity sits below
  the device's ridge point ``peak_flops / bandwidth``, compute-bound
  above, launch-bound when the fixed overhead dominates the duration.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from ..simgpu.device import SimulatedDevice

__all__ = ["KernelRooflineStats", "roofline_report", "format_roofline"]


@dataclasses.dataclass
class KernelRooflineStats:
    """Aggregated roofline position of one kernel name on one device."""

    name: str
    launches: int
    total_seconds: float
    total_flops: float
    total_global_bytes: float
    achieved_gflops: float
    arithmetic_intensity: float
    fraction_of_peak: float
    bound: str  # "compute", "memory", or "launch"


def roofline_report(device: SimulatedDevice) -> List[KernelRooflineStats]:
    """Aggregate the device's launch log per kernel name.

    Results are ordered by total time, heaviest kernel first.
    """
    spec = device.spec
    ridge = spec.fp64_flops / (spec.mem_bandwidth_gbs * 1e9)
    launch_overhead = spec.launch_overhead_us * 1e-6

    grouped: Dict[str, List] = {}
    for launch in device.launch_log:
        grouped.setdefault(launch.name, []).append(launch)

    stats: List[KernelRooflineStats] = []
    for name, launches in grouped.items():
        seconds = sum(l.duration_s for l in launches)
        flops = sum(l.flops for l in launches)
        gbytes = sum(l.global_bytes for l in launches)
        achieved = flops / seconds / 1e9 if seconds > 0 else 0.0
        intensity = flops / gbytes if gbytes > 0 else float("inf")
        overhead = launch_overhead * len(launches)
        if seconds > 0 and overhead / seconds > 0.5:
            bound = "launch"
        elif intensity < ridge:
            bound = "memory"
        else:
            bound = "compute"
        stats.append(
            KernelRooflineStats(
                name=name,
                launches=len(launches),
                total_seconds=seconds,
                total_flops=flops,
                total_global_bytes=gbytes,
                achieved_gflops=achieved,
                arithmetic_intensity=intensity,
                fraction_of_peak=achieved * 1e9 / spec.fp64_flops,
                bound=bound,
            )
        )
    stats.sort(key=lambda s: s.total_seconds, reverse=True)
    return stats


def format_roofline(device: SimulatedDevice) -> str:
    """Human-readable roofline table for one device (Nsight-style summary)."""
    stats = roofline_report(device)
    spec = device.spec
    header = (
        f"{spec.name}: FP64 peak {spec.fp64_tflops:.2f} TFLOPS, "
        f"bandwidth {spec.mem_bandwidth_gbs:.0f} GB/s, "
        f"ridge at {spec.fp64_flops / (spec.mem_bandwidth_gbs * 1e9):.1f} FLOP/byte"
    )
    lines = [header]
    lines.append(
        f"{'kernel':<28} {'launches':>8} {'time [s]':>10} {'GFLOP/s':>9} "
        f"{'AI':>8} {'% peak':>7} {'bound':>8}"
    )
    for s in stats:
        ai = f"{s.arithmetic_intensity:.1f}" if s.arithmetic_intensity != float("inf") else "inf"
        lines.append(
            f"{s.name:<28} {s.launches:>8} {s.total_seconds:>10.4f} "
            f"{s.achieved_gflops:>9.1f} {ai:>8} {s.fraction_of_peak * 100:>6.1f}% "
            f"{s.bound:>8}"
        )
    return "\n".join(lines)
