"""Timing instrumentation for the PLSSVM component breakdown (paper §IV-E).

The paper decomposes a training run into ``read``, ``transform``, ``cg``,
``write`` and ``total``; :class:`ComponentTimer` reproduces exactly that
bookkeeping, and :mod:`repro.profiling.stats` provides the aggregate
statistics (mean, std, coefficient of variation) used in §IV-C.
"""

from .roofline import KernelRooflineStats, format_roofline, roofline_report
from .stats import (
    SolverCounters,
    TimingStats,
    coefficient_of_variation,
    reset_solver_counters,
    solver_counters,
    summarize,
)
from .timer import ComponentTimer, Timer

__all__ = [
    "Timer",
    "ComponentTimer",
    "TimingStats",
    "coefficient_of_variation",
    "summarize",
    "roofline_report",
    "format_roofline",
    "KernelRooflineStats",
    "SolverCounters",
    "solver_counters",
    "reset_solver_counters",
]
