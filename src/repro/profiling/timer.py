"""Wall-clock timers with the paper's component taxonomy.

Two layers:

* :class:`Timer` — a context-manager stopwatch accumulating across entries;
* :class:`ComponentTimer` — a named collection of timers following the
  paper's breakdown (``read`` / ``transform`` / ``cg`` / ``write``), with
  ``total`` covering the whole run so that the residual
  ``total - sum(components)`` captures untimed overhead (backend/device
  initialization, cleanup — the "remaining 3%" of §IV-E).

Timers can also be advanced by *simulated* seconds (:meth:`Timer.add`),
which lets the device simulator report modeled GPU time through the same
reporting pipeline as measured host time.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, Optional

__all__ = ["Timer", "ComponentTimer", "COMPONENTS"]

#: Canonical component names of the paper's runtime analysis (§IV-E).
COMPONENTS = ("read", "transform", "cg", "write")


class Timer:
    """Accumulating stopwatch usable as a context manager.

    ``with timer: ...`` adds the enclosed wall time; :meth:`add` injects
    simulated time. Both may be mixed (e.g. host-side CG orchestration is
    measured while device kernel time is modeled).
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.elapsed = 0.0
        self.entries = 0
        self._start: Optional[float] = None

    def __enter__(self) -> "Timer":
        if self._start is not None:
            raise RuntimeError(f"timer {self.name!r} is already running")
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self.elapsed += time.perf_counter() - self._start
        self.entries += 1
        self._start = None

    def add(self, seconds: float) -> None:
        """Add ``seconds`` of (possibly simulated) time."""
        if seconds < 0:
            raise ValueError("cannot add negative time")
        self.elapsed += seconds
        self.entries += 1

    def reset(self) -> None:
        if self._start is not None:
            raise RuntimeError(f"cannot reset running timer {self.name!r}")
        self.elapsed = 0.0
        self.entries = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Timer({self.name!r}, elapsed={self.elapsed:.6f}s, entries={self.entries})"


class ComponentTimer:
    """Named timers for the PLSSVM training pipeline components."""

    def __init__(self, components: Iterable[str] = COMPONENTS) -> None:
        self._timers: Dict[str, Timer] = {name: Timer(name) for name in components}
        self._timers.setdefault("total", Timer("total"))

    def __getitem__(self, name: str) -> Timer:
        if name not in self._timers:
            self._timers[name] = Timer(name)
        return self._timers[name]

    def section(self, name: str) -> Timer:
        """Timer for component ``name`` (created on first use)."""
        return self[name]

    def elapsed(self, name: str) -> float:
        return self._timers[name].elapsed if name in self._timers else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Elapsed seconds per component (zero-entry timers included)."""
        return {name: t.elapsed for name, t in self._timers.items()}

    @property
    def untimed(self) -> float:
        """``total`` minus the sum of all named components (init/cleanup overhead)."""
        total = self.elapsed("total")
        parts = sum(t.elapsed for name, t in self._timers.items() if name != "total")
        return max(0.0, total - parts)

    def merge(self, other: "ComponentTimer") -> None:
        """Accumulate another run's timings into this one.

        Section names are unioned: a section recorded only by ``other``
        appears in the merged result. Entry counts carry over exactly —
        routing through :meth:`Timer.add` would count each merged section
        as a single entry and stamp a phantom entry onto sections the
        other run never entered.
        """
        for name, timer in other._timers.items():
            if timer.entries == 0 and timer.elapsed == 0.0:
                continue
            mine = self[name]
            mine.elapsed += timer.elapsed
            mine.entries += timer.entries

    def report(self) -> str:
        """Human-readable component table (used by the CLI's verbose mode).

        Shares are computed against ``max(total, sum of components)`` —
        components recorded outside the ``total`` span (e.g. a model write
        after training) must not produce >100 % shares.
        """
        parts = sum(t.elapsed for n, t in self._timers.items() if n != "total")
        total = max(self.elapsed("total"), parts)
        lines = []
        for name, timer in self._timers.items():
            if name == "total":
                continue
            share = (timer.elapsed / total * 100.0) if total > 0 else 0.0
            lines.append(f"{name:>10}: {timer.elapsed:10.4f}s ({share:5.1f}%)")
        lines.append(f"{'total':>10}: {total:10.4f}s (100.0%)")
        return "\n".join(lines)
