"""Aggregate statistics over repeated measurement runs.

The paper reports averages over >= 10 runs and compares implementations by
their *coefficient of variation* (std / mean) to show that the CG-based
LS-SVM has drastically steadier runtimes than the SMO solvers (§IV-C:
0.26 vs 0.92/0.60/0.66 on the CPU, 0.11 vs 0.37 on the GPU). This module
provides those aggregates.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Sequence

__all__ = ["TimingStats", "coefficient_of_variation", "summarize", "speedup"]


@dataclasses.dataclass(frozen=True)
class TimingStats:
    """Summary statistics of a sample of runtimes (seconds)."""

    mean: float
    std: float
    minimum: float
    maximum: float
    count: int

    @property
    def cv(self) -> float:
        """Coefficient of variation (std / mean); 0 for a zero mean."""
        return self.std / self.mean if self.mean > 0 else 0.0


def summarize(samples: Sequence[float]) -> TimingStats:
    """Compute :class:`TimingStats` for a non-empty sample.

    Uses the population standard deviation (ddof=0), matching how repeated
    benchmark runs of a deterministic workload are usually reported.
    """
    if len(samples) == 0:
        raise ValueError("cannot summarize an empty sample")
    n = len(samples)
    mean = sum(samples) / n
    var = sum((s - mean) ** 2 for s in samples) / n
    return TimingStats(
        mean=mean,
        std=math.sqrt(var),
        minimum=min(samples),
        maximum=max(samples),
        count=n,
    )


def coefficient_of_variation(samples: Sequence[float]) -> float:
    """``std / mean`` of a runtime sample (the paper's stability metric)."""
    return summarize(samples).cv


def speedup(baseline: float, contender: float) -> float:
    """Speedup factor of ``contender`` over ``baseline`` (``baseline / contender``)."""
    if contender <= 0:
        raise ValueError("contender runtime must be positive")
    if baseline < 0:
        raise ValueError("baseline runtime must be non-negative")
    return baseline / contender
