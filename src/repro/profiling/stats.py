"""Aggregate statistics over repeated measurement runs.

The paper reports averages over >= 10 runs and compares implementations by
their *coefficient of variation* (std / mean) to show that the CG-based
LS-SVM has drastically steadier runtimes than the SMO solvers (§IV-C:
0.26 vs 0.92/0.60/0.66 on the CPU, 0.11 vs 0.37 on the GPU). This module
provides those aggregates.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Sequence

__all__ = [
    "TimingStats",
    "coefficient_of_variation",
    "summarize",
    "speedup",
    "SolverCounters",
    "solver_counters",
    "reset_solver_counters",
]


@dataclasses.dataclass(frozen=True)
class TimingStats:
    """Summary statistics of a sample of runtimes (seconds)."""

    mean: float
    std: float
    minimum: float
    maximum: float
    count: int

    @property
    def cv(self) -> float:
        """Coefficient of variation (std / mean); 0 for a zero mean."""
        return self.std / self.mean if self.mean > 0 else 0.0


def summarize(samples: Sequence[float]) -> TimingStats:
    """Compute :class:`TimingStats` for a non-empty sample.

    Uses the population standard deviation (ddof=0), matching how repeated
    benchmark runs of a deterministic workload are usually reported.
    """
    if len(samples) == 0:
        raise ValueError("cannot summarize an empty sample")
    n = len(samples)
    mean = sum(samples) / n
    var = sum((s - mean) ** 2 for s in samples) / n
    return TimingStats(
        mean=mean,
        std=math.sqrt(var),
        minimum=min(samples),
        maximum=max(samples),
        count=n,
    )


def coefficient_of_variation(samples: Sequence[float]) -> float:
    """``std / mean`` of a runtime sample (the paper's stability metric)."""
    return summarize(samples).cv


def speedup(baseline: float, contender: float) -> float:
    """Speedup factor of ``contender`` over ``baseline`` (``baseline / contender``)."""
    if contender <= 0:
        raise ValueError("contender runtime must be positive")
    if baseline < 0:
        raise ValueError("baseline runtime must be non-negative")
    return baseline / contender


@dataclasses.dataclass
class SolverCounters:
    """Process-wide counters of the shared kernel-tile pipeline.

    Every :class:`repro.core.tile_pipeline.TilePipeline` folds its per-sweep
    activity in here, so benchmarks and the CLI can report how much kernel
    work the solver actually performed — and how much the cross-iteration
    tile cache saved — without threading a stats object through every layer.

    Attributes
    ----------
    tile_sweeps:
        Full passes over the tiled kernel matrix (one per block-CG
        iteration, regardless of how many right-hand sides ride along).
    tiles_computed:
        Kernel tiles evaluated from scratch (cache misses + uncached runs).
    cache_hits / cache_misses / cache_evictions:
        Cross-iteration tile cache traffic.
    cg_solves / cg_iterations:
        Completed CG solves (single-RHS and block alike) and their summed
        iteration counts — the numerator/denominator of the
        iteration-reduction story preconditioning tells.
    precond_setups / precond_setup_seconds / precond_rank:
        Preconditioner constructions via
        :func:`repro.core.precond.make_preconditioner`: how many, their
        summed setup wall time, and the realized rank of the most recent
        one (0 for Jacobi).
    cache_oversized:
        Tiles that bypassed the cache because a single tile alone would
        exceed the configured byte budget.
    devices_lost / redistributions / checkpoint_restores:
        Fault-recovery activity of :func:`repro.core.resilience.resilient_solve`:
        devices declared dead, feature-split redistributions onto the
        survivors, and CG restarts from a mid-solve checkpoint.
    transient_retries / backoff_seconds:
        Retries of transient device faults and the total (modeled)
        exponential-backoff delay they accrued.
    """

    tile_sweeps: int = 0
    tiles_computed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    cache_oversized: int = 0
    cg_solves: int = 0
    cg_iterations: int = 0
    precond_setups: int = 0
    precond_setup_seconds: float = 0.0
    precond_rank: int = 0
    devices_lost: int = 0
    redistributions: int = 0
    checkpoint_restores: int = 0
    transient_retries: int = 0
    backoff_seconds: float = 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of tile lookups served from the cache (0 when unused)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "tile_sweeps": self.tile_sweeps,
            "tiles_computed": self.tiles_computed,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_evictions": self.cache_evictions,
            "cache_oversized": self.cache_oversized,
            "cache_hit_rate": self.cache_hit_rate,
            "cg_solves": self.cg_solves,
            "cg_iterations": self.cg_iterations,
            "precond_setups": self.precond_setups,
            "precond_setup_seconds": self.precond_setup_seconds,
            "precond_rank": self.precond_rank,
            "devices_lost": self.devices_lost,
            "redistributions": self.redistributions,
            "checkpoint_restores": self.checkpoint_restores,
            "transient_retries": self.transient_retries,
            "backoff_seconds": self.backoff_seconds,
        }

    def reset(self) -> None:
        self.tile_sweeps = 0
        self.tiles_computed = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0
        self.cache_oversized = 0
        self.cg_solves = 0
        self.cg_iterations = 0
        self.precond_setups = 0
        self.precond_setup_seconds = 0.0
        self.precond_rank = 0
        self.devices_lost = 0
        self.redistributions = 0
        self.checkpoint_restores = 0
        self.transient_retries = 0
        self.backoff_seconds = 0.0


class _RootCountersProxy:
    """Deprecated live view of the telemetry root context's solver metrics.

    Quacks like the old process-wide :class:`SolverCounters` instance:
    attribute reads resolve against the root
    :class:`repro.telemetry.MetricsRegistry` *at access time* (so holding
    the object across a solve and reading afterwards sees the new
    totals, exactly like the old mutable singleton), and attribute
    writes forward into the registry for any legacy code that still
    mutates counters directly.
    """

    __slots__ = ()

    @staticmethod
    def _registry():
        from ..telemetry.context import root_context

        return root_context().metrics

    def __getattr__(self, name: str):
        from ..telemetry.metrics import SOLVER_COUNTER_NAMES, SOLVER_GAUGE_NAMES

        if name in SOLVER_COUNTER_NAMES or name in SOLVER_GAUGE_NAMES:
            return self._registry().value(name)
        raise AttributeError(name)

    def __setattr__(self, name: str, value) -> None:
        from ..telemetry.metrics import SOLVER_COUNTER_NAMES, SOLVER_GAUGE_NAMES

        registry = self._registry()
        if name in SOLVER_GAUGE_NAMES:
            registry.gauge(name).set(value)
        elif name in SOLVER_COUNTER_NAMES:
            registry.counter(name).set(value)
        else:
            raise AttributeError(name)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of tile lookups served from the cache (0 when unused)."""
        hits = self.cache_hits
        total = hits + self.cache_misses
        return hits / total if total else 0.0

    def as_dict(self) -> dict:
        return self._registry().solver_counters_dict()

    def reset(self) -> None:
        from ..telemetry.context import reset_root_context

        reset_root_context()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SolverCounters(proxy over telemetry root, {self.as_dict()!r})"


_SOLVER_COUNTERS = _RootCountersProxy()


def _warn_deprecated(name: str) -> None:
    import warnings

    warnings.warn(
        f"repro.profiling.{name}() is deprecated; per-fit numbers live on "
        "model.report_ (repro.telemetry.TrainingReport), aggregates on "
        "repro.telemetry.root_context().",
        DeprecationWarning,
        stacklevel=3,
    )


def solver_counters() -> _RootCountersProxy:
    """Deprecated: the process-wide solver-counter aggregate.

    .. deprecated::
        Use ``model.report_`` (a :class:`repro.telemetry.TrainingReport`)
        for per-fit numbers, or :func:`repro.telemetry.root_context` for
        process-wide aggregates. This shim now proxies the telemetry root
        context so aggregate semantics are unchanged.
    """
    _warn_deprecated("solver_counters")
    return _SOLVER_COUNTERS


def reset_solver_counters() -> None:
    """Deprecated: zero the process-wide solver counters.

    .. deprecated::
        Use :func:`repro.telemetry.reset_root_context`.
    """
    _warn_deprecated("reset_solver_counters")
    from ..telemetry.context import reset_root_context

    reset_root_context()
