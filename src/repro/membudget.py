"""Process-level memory budget and peak-RSS sampling.

Out-of-core training promises to keep the resident set under a caller-chosen
byte budget (``LSSVC(memory_budget_mb=...)`` / ``plssvm-train
--memory-budget-mb``).  Two small pieces make that promise enforceable:

* an *active budget* — a context-scoped byte limit that allocation-heavy
  code paths (``ExplicitQMatrix``, :func:`repro.core.qmatrix.build_reduced_system`,
  :class:`repro.io.chunked.ChunkedDataset`) consult before materializing
  large arrays, and
* a *peak-RSS gauge* — ``resource.getrusage`` sampling recorded into the
  telemetry context at phase boundaries and CG checkpoints, so the
  ``TrainingReport`` can prove the budget held for a whole fit.

The budget is stored in a :class:`contextvars.ContextVar` so concurrent fits
on different threads (or nested fits) each see their own limit.
"""

from __future__ import annotations

import contextlib
import contextvars
import sys
from typing import Iterator, Optional

from .exceptions import InvalidParameterError

__all__ = [
    "active_memory_budget",
    "set_memory_budget",
    "memory_budget",
    "budget_from_mb",
    "format_bytes",
    "peak_rss_bytes",
    "reset_peak_rss",
    "sample_peak_rss",
]

_BUDGET: contextvars.ContextVar[Optional[int]] = contextvars.ContextVar(
    "plssvm_memory_budget_bytes", default=None
)


def active_memory_budget() -> Optional[int]:
    """Return the active memory budget in bytes, or ``None`` when unlimited."""
    return _BUDGET.get()


def set_memory_budget(nbytes: Optional[int]) -> contextvars.Token:
    """Set the active budget (bytes; ``None`` clears it) and return a reset token."""
    if nbytes is not None:
        nbytes = int(nbytes)
        if nbytes <= 0:
            raise InvalidParameterError(f"memory budget must be positive, got {nbytes}")
    return _BUDGET.set(nbytes)


def budget_from_mb(mb: Optional[float]) -> Optional[int]:
    """Convert a megabyte budget (as accepted by the CLI/estimators) to bytes."""
    if mb is None:
        return None
    mb = float(mb)
    if not mb > 0:
        raise InvalidParameterError(f"memory budget must be positive, got {mb} MB")
    return int(mb * 1024 * 1024)


@contextlib.contextmanager
def memory_budget(mb: Optional[float]) -> Iterator[Optional[int]]:
    """Scope an active budget of ``mb`` megabytes (``None`` leaves it unchanged)."""
    if mb is None:
        yield active_memory_budget()
        return
    token = set_memory_budget(budget_from_mb(mb))
    try:
        yield active_memory_budget()
    finally:
        _BUDGET.reset(token)


def format_bytes(nbytes: float) -> str:
    """Human-readable byte count (``512.0 MiB``), for error messages."""
    value = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024.0
    return f"{value:.1f} TiB"


def peak_rss_bytes() -> int:
    """Peak resident-set size of this process, in bytes.

    ``ru_maxrss`` is reported in kilobytes on Linux and in bytes on macOS;
    returns 0 on platforms without :mod:`resource` (e.g. Windows).  The
    value is the kernel's high-water mark since process start — or since
    the last successful :func:`reset_peak_rss`, which the fit entry points
    call so the reported peak is the fit's own rather than the process
    lifetime's (a child even inherits the parent's resident pages across
    ``fork``, so without the reset a subprocess can start with a peak far
    above anything it ever allocated itself).
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS reports bytes
        return int(peak)
    return int(peak) * 1024


def reset_peak_rss() -> bool:
    """Reset the kernel's peak-RSS high-water mark to the current RSS.

    Writes ``5`` to ``/proc/self/clear_refs`` (Linux only), after which
    :func:`peak_rss_bytes` reflects allocations made *since the reset* —
    a per-fit peak instead of a process-lifetime one.  Returns ``True``
    when the reset happened; on other platforms (or a locked-down
    ``/proc``) returns ``False`` and samples keep lifetime semantics.
    """
    try:
        with open("/proc/self/clear_refs", "w") as fh:
            fh.write("5")
        return True
    except OSError:
        return False


def sample_peak_rss(ctx=None) -> int:
    """Record the current peak RSS into the telemetry ``peak_rss_bytes`` gauge.

    The gauge keeps the *maximum* of all samples taken in the context, so
    a nested fit calling :func:`reset_peak_rss` mid-way cannot understate
    an outer fit's earlier high-water mark.  Returns the sampled value.
    With no active telemetry context the sample is still returned, just
    not recorded.
    """
    peak = peak_rss_bytes()
    if ctx is None:
        from .telemetry import current_context

        ctx = current_context()
    if ctx is not None:
        prev = float(ctx.metrics.value("peak_rss_bytes") or 0.0)
        ctx.set_gauge("peak_rss_bytes", max(float(peak), prev))
    return peak
