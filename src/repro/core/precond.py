"""Preconditioners for the reduced LS-SVM system.

CG's iteration count on the reduced system of Eq. 14 grows with the
spread of ``Q_tilde``'s spectrum, which for RBF problems grows with the
training-set size — the paper's Fig. 2 shows the ``cg`` component at
>= 92 % of training time, and PR 1 only made each iteration cheaper. This
module attacks the *count*:

* :class:`JacobiPrecond` — the classic diagonal scaling ``M = diag(A)``,
  subsuming the legacy ``preconditioner=<diag vector>`` path of
  :func:`repro.core.cg.conjugate_gradient`. Cheap (O(m) setup), helps when
  the diagonal varies (weighted LS-SVM, dot-product kernels), useless for
  RBF whose diagonal is constant.
* :class:`NystromPrecond` — a randomized Nyström preconditioner in the
  spirit of Frangella/Tropp/Udell (*Randomized Nyström Preconditioning*)
  and Andrecut (*Randomized Kernel Methods for Least-Squares Support
  Vector Machines*): a rank-``r`` approximation ``K_bar ~= F F^T`` of the
  kernel matrix is drawn by **randomly pivoted partial Cholesky**
  (RPCholesky, Chen/Epperly/Tropp/Webber) without ever forming ``K_bar``,
  then ``M = F F^T + diag(ridge)`` is applied in ``O(m r)`` per iteration
  through the Woodbury identity. With the top of the kernel spectrum
  deflated, the preconditioned system's condition number collapses to
  roughly ``(lambda_r + ridge) / ridge`` — iteration counts drop by the
  square root of that ratio.

Both classes implement the :class:`Preconditioner` protocol consumed by
:func:`repro.core.cg.conjugate_gradient` and
:func:`~repro.core.cg.conjugate_gradient_block`. The block solver's rQ
recursion needs a *split* form: any ``E`` with ``E E^T = M^{-1}`` lets it
run its plain (unpreconditioned) recursion on the transformed SPD system
``(E^T A E) Y = E^T B`` with ``X = E Y``. For Jacobi, ``E = D^{-1/2}``
(the transform the block solver already used); for Nyström, ``E`` is the
diagonal scaling composed with a rank-``r`` correction of the identity,
obtained from one thin SVD at setup and applied in ``O(m r)``.

Setup cost and the realized rank are reported through the active
:class:`repro.telemetry.TelemetryContext` so benchmarks and per-fit
reports see the iterations-vs-setup trade-off without plumbing.
"""

from __future__ import annotations

import time
from typing import List, Optional, Protocol, Tuple, Union, runtime_checkable

import numpy as np

from ..exceptions import InvalidParameterError
from ..telemetry.context import current_context
from ..types import KernelType
from .kernels import kernel_diagonal, kernel_row

__all__ = [
    "Preconditioner",
    "JacobiPrecond",
    "NystromPrecond",
    "rpcholesky",
    "refresh_nystrom",
    "default_nystrom_rank",
    "make_preconditioner",
]


@runtime_checkable
class Preconditioner(Protocol):
    """SPD preconditioner interface for the CG solvers.

    ``apply`` is what single-vector PCG consumes (``z = M^{-1} r``); the
    four ``sqrt_*`` methods expose a split factor ``E`` with
    ``E E^T = M^{-1}`` so block CG can run its rQ recursion on the
    symmetrically transformed system (see module docstring). ``E`` need
    not be symmetric — only invertible.
    """

    name: str
    shape: tuple

    def apply(self, R: np.ndarray) -> np.ndarray:
        """``M^{-1} @ R`` for a vector ``(n,)`` or block ``(n, k)``."""
        ...

    def sqrt_apply(self, V: np.ndarray) -> np.ndarray:
        """``E @ V``."""
        ...

    def sqrt_apply_t(self, V: np.ndarray) -> np.ndarray:
        """``E^T @ V``."""
        ...

    def sqrt_unapply(self, V: np.ndarray) -> np.ndarray:
        """``E^{-1} @ V`` (maps an initial guess into transformed space)."""
        ...

    def sqrt_unapply_t(self, V: np.ndarray) -> np.ndarray:
        """``E^{-T} @ V`` (maps transformed residuals back for termination)."""
        ...


def _validate_diag(diag: np.ndarray, *, what: str = "Jacobi preconditioner") -> np.ndarray:
    diag = np.asarray(diag, dtype=np.float64).ravel()
    if diag.size == 0:
        raise InvalidParameterError(f"{what} requires a non-empty diagonal")
    if not np.all(np.isfinite(diag)):
        raise InvalidParameterError(f"{what} requires finite diagonal entries")
    if np.any(diag <= 0):
        raise InvalidParameterError(
            f"{what} requires strictly positive diagonal entries"
        )
    return diag


class JacobiPrecond:
    """Diagonal (Jacobi) preconditioner ``M = diag(d)``.

    Subsumes the legacy ``preconditioner=<diag vector>`` arguments of both
    CG entry points: they now wrap the vector in this class, so the
    positivity/finiteness validation (and its
    :class:`~repro.exceptions.InvalidParameterError`) is identical on the
    single-RHS and block paths.
    """

    name = "jacobi"

    def __init__(self, diag: np.ndarray) -> None:
        d = _validate_diag(diag)
        self.diag = d
        self._inv = 1.0 / d
        self._isqrt = np.sqrt(self._inv)
        self._sqrt = 1.0 / self._isqrt
        self.applies = 0

    @classmethod
    def from_qmatrix(cls, qmat) -> "JacobiPrecond":
        """Jacobi preconditioner of a reduced system (``M = diag(Q_tilde)``)."""
        return cls(qmat.diagonal())

    @property
    def shape(self) -> tuple:
        n = self.diag.shape[0]
        return (n, n)

    @property
    def rank(self) -> int:
        """Low-rank correction rank (0: Jacobi is purely diagonal)."""
        return 0

    def _scale(self, V: np.ndarray, s: np.ndarray) -> np.ndarray:
        V = np.asarray(V)
        return s * V if V.ndim == 1 else s[:, None] * V

    def apply(self, R: np.ndarray) -> np.ndarray:
        self.applies += 1
        return self._scale(R, self._inv)

    def sqrt_apply(self, V: np.ndarray) -> np.ndarray:
        return self._scale(V, self._isqrt)

    # E = D^{-1/2} is symmetric, so E^T == E and E^{-T} == E^{-1}.
    sqrt_apply_t = sqrt_apply

    def sqrt_unapply(self, V: np.ndarray) -> np.ndarray:
        return self._scale(V, self._sqrt)

    sqrt_unapply_t = sqrt_unapply


def _rpcholesky_oracle(
    diag: np.ndarray,
    column,
    *,
    rank: int,
    rng: Union[None, int, np.random.Generator] = None,
    tol: float = 1e-12,
) -> Tuple[np.ndarray, List[int]]:
    """Randomly pivoted partial Cholesky of an implicit PSD matrix.

    Matrix access is via oracles — its ``diag`` and a ``column(s)``
    callable returning column ``s`` — so the ``m x m`` matrix is never
    materialized: ``rank`` columns (``O(m r)`` oracle calls) plus
    ``O(m r^2)`` linear algebra. Pivots are sampled proportionally to the
    residual diagonal, which gives the RPCholesky guarantee of
    Chen/Epperly/Tropp/Webber (2022): the expected trace error is within a
    modest factor of the best rank-``r`` approximation.

    Returns ``(F, pivots)`` with ``A ~= F F^T``; ``F`` has one column per
    accepted pivot and may be narrower than ``rank`` when the residual
    trace is exhausted early (the matrix is then numerically of lower
    rank — a *better* outcome, not a failure).
    """
    if rank < 1:
        raise InvalidParameterError(f"rank must be positive, got {rank}")
    d = np.asarray(diag, dtype=np.float64).copy().ravel()
    m = d.shape[0]
    rank = min(int(rank), m)
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)

    np.clip(d, 0.0, None, out=d)
    trace0 = float(d.sum())
    F = np.zeros((m, rank), dtype=np.float64)
    pivots: List[int] = []
    for i in range(rank):
        total = float(d.sum())
        if not np.isfinite(total) or total <= tol * max(trace0, 1.0):
            break
        s = int(gen.choice(m, p=d / total))
        col = np.asarray(column(s), dtype=np.float64).ravel()
        if i:
            col -= F[:, :i] @ F[s, :i]
        pivot_val = float(col[s])
        if pivot_val <= tol:
            # Sampled a numerically eliminated point; residual is exhausted.
            break
        F[:, i] = col / np.sqrt(pivot_val)
        d -= F[:, i] ** 2
        np.clip(d, 0.0, None, out=d)
        pivots.append(s)
    return F[:, : len(pivots)], pivots


def rpcholesky(
    points: np.ndarray,
    kernel: Union[str, int, KernelType],
    *,
    rank: int,
    gamma: Optional[float] = None,
    degree: int = 3,
    coef0: float = 0.0,
    rng: Union[None, int, np.random.Generator] = None,
    tol: float = 1e-12,
) -> Tuple[np.ndarray, List[int]]:
    """Randomly pivoted partial Cholesky of a kernel matrix ``K ~= F F^T``.

    Convenience wrapper of the oracle-based factorization for a plain
    kernel matrix over ``points`` — each pivot costs one
    :func:`~repro.core.kernels.kernel_row` evaluation (``O(m d)``), so the
    total work is ``O(m r d + m r^2)`` without ever forming ``K``.
    """
    pts = np.ascontiguousarray(np.asarray(points, dtype=np.float64))
    if pts.ndim != 2:
        raise InvalidParameterError("points must be a 2-D array")
    kernel = KernelType.from_name(kernel)
    kw = dict(gamma=gamma, degree=degree, coef0=coef0)
    return _rpcholesky_oracle(
        kernel_diagonal(pts, kernel, **kw),
        lambda s: kernel_row(pts[s], pts, kernel, **kw),
        rank=rank,
        rng=rng,
        tol=tol,
    )


class NystromPrecond:
    """Low-rank-plus-diagonal preconditioner ``M = F F^T + diag(d)``.

    ``F`` is a (partial-Cholesky / Nyström) factor of the kernel matrix
    and ``d`` the positive ridge vector of the reduced system, so ``M``
    is SPD *for any factor* — including an empty one, where it degrades
    gracefully to Jacobi on the ridge.

    Application uses the Woodbury identity in scaled form: with
    ``Ft = D^{-1/2} F = U diag(s) V^T`` (one thin SVD at setup),

        M^{-1} = D^{-1/2} (I - U diag(s^2/(1+s^2)) U^T) D^{-1/2}

    and the split factor for block CG is ``E = D^{-1/2} S`` with the
    symmetric ``S = (I + Ft Ft^T)^{-1/2} = I + U diag((1+s^2)^{-1/2}-1) U^T``
    (so ``E E^T = M^{-1}`` exactly). Every application is two thin GEMVs
    against ``U`` — ``O(m r)``.

    :meth:`from_qmatrix` factors the reduced system's *corrected* kernel

        G = K_bar - 1 q^T - q 1^T + q_mm 1 1^T

    rather than ``K_bar`` alone: ``G`` is PSD (it is the Gram matrix of
    the centered features ``phi(x_i) - phi(x_m)`` plus
    ``ridge_m * 1 1^T``), it is exactly ``Q_tilde - diag(ridge)``, and its
    rank-one ``q`` terms have spectral norm ``O(m)`` — orders of magnitude
    above the ridge — so a factor that ignored them would leave the
    preconditioned spectrum with huge outliers.
    """

    name = "nystrom"

    #: Reduced-row indices of the RPCholesky pivots the factor was built
    #: from (set by :meth:`from_qmatrix` / :func:`refresh_nystrom`). The
    #: incremental engine reuses them as fixed Nyström landmarks when the
    #: spectrum shift of an appended chunk is small.
    pivots: tuple = ()

    def __init__(self, factor: np.ndarray, diag: np.ndarray) -> None:
        F = np.asarray(factor, dtype=np.float64)
        if F.ndim != 2:
            raise InvalidParameterError("factor must be a 2-D array")
        d = _validate_diag(diag, what="Nystrom preconditioner")
        if F.shape[0] != d.shape[0]:
            raise InvalidParameterError(
                f"factor rows ({F.shape[0]}) do not match diagonal length ({d.shape[0]})"
            )
        if not np.all(np.isfinite(F)):
            raise InvalidParameterError("factor contains NaN or infinite values")
        self.diag = d
        self.rank = int(F.shape[1])
        self._isqrt_d = np.sqrt(1.0 / d)
        self._sqrt_d = 1.0 / self._isqrt_d
        Ft = F * self._isqrt_d[:, None]
        U, s, _ = np.linalg.svd(Ft, full_matrices=False)
        s2 = s ** 2
        self._U = np.ascontiguousarray(U)
        self._w_inv = -s2 / (1.0 + s2)                # M^{-1} core weights
        self._w_s = 1.0 / np.sqrt(1.0 + s2) - 1.0     # S   = I + U w U^T
        self._w_s_inv = np.sqrt(1.0 + s2) - 1.0       # S^-1 = I + U w U^T
        self.applies = 0

    @classmethod
    def from_qmatrix(
        cls,
        qmat,
        *,
        rank: Optional[int] = None,
        rng: Union[None, int, np.random.Generator] = None,
    ) -> "NystromPrecond":
        """Build the preconditioner for a reduced system operator.

        Runs the oracle RPCholesky on the operator's corrected kernel
        ``G = Q_tilde - diag(ridge)`` (see class docstring). Pivot columns
        go through the operator's row-block protocol
        (:meth:`~repro.core.qmatrix.QMatrixBase.kernel_column`) plus O(m)
        corrections, so neither the kernel matrix nor dense ``X`` is ever
        formed — out-of-core row-sharded operators stream each column.
        ``rank=None`` picks :func:`default_nystrom_rank`.
        """
        n = qmat.shape[0]
        r = default_nystrom_rank(n) if rank is None else int(rank)
        if r < 1:
            raise InvalidParameterError(f"precond_rank must be positive, got {rank}")
        q_bar = np.asarray(qmat.q_bar, dtype=np.float64)
        q_mm = float(qmat.q_mm)

        def corrected_column(s: int) -> np.ndarray:
            col = np.asarray(qmat.kernel_column(s), dtype=np.float64)
            col -= q_bar[s]
            col -= q_bar
            col += q_mm
            return col

        diag = np.asarray(qmat.diagonal(), dtype=np.float64) - np.asarray(
            qmat.ridge_bar, dtype=np.float64
        )
        F, pivots = _rpcholesky_oracle(
            diag, corrected_column, rank=min(r, n), rng=rng
        )
        precond = cls(F, qmat.ridge_bar)
        precond.pivots = tuple(pivots)
        return precond

    @property
    def shape(self) -> tuple:
        n = self.diag.shape[0]
        return (n, n)

    def _low_rank(self, V: np.ndarray, w: np.ndarray) -> np.ndarray:
        """``(I + U diag(w) U^T) @ V`` for a vector or block."""
        if self.rank == 0:
            return np.asarray(V, dtype=np.float64).copy()
        V = np.asarray(V, dtype=np.float64)
        if V.ndim == 1:
            return V + self._U @ (w * (self._U.T @ V))
        return V + self._U @ (w[:, None] * (self._U.T @ V))

    def _scale(self, V: np.ndarray, s: np.ndarray) -> np.ndarray:
        V = np.asarray(V, dtype=np.float64)
        return s * V if V.ndim == 1 else s[:, None] * V

    def apply(self, R: np.ndarray) -> np.ndarray:
        self.applies += 1
        return self._scale(self._low_rank(self._scale(R, self._isqrt_d), self._w_inv), self._isqrt_d)

    def sqrt_apply(self, V: np.ndarray) -> np.ndarray:
        # E = D^{-1/2} S
        return self._scale(self._low_rank(V, self._w_s), self._isqrt_d)

    def sqrt_apply_t(self, V: np.ndarray) -> np.ndarray:
        # E^T = S D^{-1/2}
        return self._low_rank(self._scale(V, self._isqrt_d), self._w_s)

    def sqrt_unapply(self, V: np.ndarray) -> np.ndarray:
        # E^{-1} = S^{-1} D^{1/2}
        return self._low_rank(self._scale(V, self._sqrt_d), self._w_s_inv)

    def sqrt_unapply_t(self, V: np.ndarray) -> np.ndarray:
        # E^{-T} = D^{1/2} S^{-1}
        return self._scale(self._low_rank(V, self._w_s_inv), self._sqrt_d)


def refresh_nystrom(qmat, pivots) -> NystromPrecond:
    """Rebuild a Nyström preconditioner on *fixed* landmark pivots.

    The incremental-training warm path: when ``partial_fit`` appends a
    small chunk, the corrected kernel ``G`` changes — every entry sees the
    new eliminated point — but its dominant eigenspace barely moves, so
    the expensive randomized pivot *search* need not be redone. This
    recomputes only the ``r`` pivot columns of the new ``G`` (``O(m r)``
    kernel entries) and forms the classic fixed-landmark Nyström factor

        G  ~=  C B^{-1} C^T  =  F F^T,   F = C L^{-T},  B = L L^T

    with ``C = G[:, pivots]`` and ``B = G[pivots][:, pivots]`` (jittered
    Cholesky for numerical PSD safety). Pivot indices refer to reduced
    rows of the *previous* system; appended rows only extend the index
    space, so they remain valid verbatim.
    """
    pivots = tuple(int(p) for p in pivots)
    n = qmat.shape[0]
    if not pivots:
        raise InvalidParameterError("refresh_nystrom needs a non-empty pivot set")
    if max(pivots) >= n or min(pivots) < 0:
        raise InvalidParameterError(
            f"pivot index out of range for system size {n}"
        )
    q_bar = np.asarray(qmat.q_bar, dtype=np.float64)
    q_mm = float(qmat.q_mm)

    def corrected_column(s: int) -> np.ndarray:
        col = np.asarray(qmat.kernel_column(s), dtype=np.float64)
        col -= q_bar[s]
        col -= q_bar
        col += q_mm
        return col

    ctx = current_context()
    start = time.perf_counter()
    with ctx.span("precond_setup", kind="nystrom-refresh", rank=len(pivots)):
        C = np.column_stack([corrected_column(s) for s in pivots])
        B = C[list(pivots), :]
        B = 0.5 * (B + B.T)
        jitter = 1e-12 * max(float(np.trace(B)), 1.0)
        L = None
        for _ in range(4):
            try:
                L = np.linalg.cholesky(B + jitter * np.eye(B.shape[0]))
                break
            except np.linalg.LinAlgError:
                jitter *= 1e3
        if L is None:
            raise InvalidParameterError(
                "pivot block is numerically indefinite; rebuild the "
                "preconditioner from scratch"
            )
        # F = C L^{-T}  =>  F F^T = C B^{-1} C^T.
        F = np.linalg.solve(L, C.T).T
        precond = NystromPrecond(F, qmat.ridge_bar)
        precond.pivots = pivots
    ctx.inc("precond_setups")
    ctx.inc("precond_setup_seconds", time.perf_counter() - start)
    ctx.set_gauge("precond_rank", precond.rank)
    return precond


def default_nystrom_rank(n: int) -> int:
    """Rank heuristic: ``~2 sqrt(n)`` clamped to ``[16, min(n, 512)]``.

    Large enough to deflate the slowly decaying head of a smooth kernel
    spectrum, small enough that setup (``O(m r d + m r^2)``) and the
    per-iteration ``O(m r)`` stay well below one tile sweep (``O(m^2)``).
    """
    if n < 1:
        raise InvalidParameterError(f"system size must be positive, got {n}")
    return max(16, min(int(2 * np.sqrt(n)), n, 512))


def make_preconditioner(
    qmat,
    kind: Union[None, str, Preconditioner],
    *,
    rank: Optional[int] = None,
    rng: Union[None, int, np.random.Generator] = None,
) -> Optional[Preconditioner]:
    """Resolve a ``precondition=`` argument against a reduced system.

    ``kind`` may be ``None`` / ``"none"`` (no preconditioning),
    ``"jacobi"``, ``"nystrom"``, or a ready-made :class:`Preconditioner`
    instance (returned as-is). Setup wall time and the realized rank are
    reported through the active :class:`repro.telemetry.TelemetryContext`.
    """
    if kind is None:
        return None
    if not isinstance(kind, str):
        if isinstance(kind, Preconditioner):
            return kind
        raise InvalidParameterError(
            f"precondition must be None, 'jacobi', 'nystrom', or a Preconditioner, "
            f"got {type(kind).__name__}"
        )
    name = kind.strip().lower()
    if name in ("", "none"):
        return None
    ctx = current_context()
    start = time.perf_counter()
    with ctx.span("precond_setup", kind=name):
        if name == "jacobi":
            precond: Preconditioner = JacobiPrecond.from_qmatrix(qmat)
        elif name == "nystrom":
            precond = NystromPrecond.from_qmatrix(qmat, rank=rank, rng=rng)
        else:
            raise InvalidParameterError(
                f"unknown preconditioner {kind!r}; expected 'jacobi', 'nystrom', or None"
            )
    ctx.inc("precond_setups")
    ctx.inc("precond_setup_seconds", time.perf_counter() - start)
    ctx.set_gauge("precond_rank", getattr(precond, "rank", 0))
    return precond
