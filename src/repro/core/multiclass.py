"""Multi-class LS-SVM classification (paper §V future work).

The paper supports only binary classification and names multi-class
support as the canonical extension ("it is not difficult to include these
functionalities on the basis of our library"). Both standard decompositions
are provided, following Suykens & Vandewalle's multiclass LS-SVM paper and
LIBSVM's convention respectively:

* :class:`OneVsAllLSSVC` — one binary machine per class (class k vs the
  rest); prediction takes the argmax of the decision values.
* :class:`OneVsOneLSSVC` — one machine per class pair (LIBSVM's scheme);
  prediction by majority vote with decision-value tie-breaking.

Any binary estimator with the ``fit`` / ``decision_function`` interface
can be plugged in via ``estimator_factory`` — by default a fresh
:class:`repro.core.lssvm.LSSVC` with the given hyper-parameters.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from ..exceptions import DataError, InvalidParameterError, NotFittedError
from ..membudget import memory_budget, reset_peak_rss, sample_peak_rss
from ..parameter import Parameter, ResourceConfig, SolverConfig
from ..telemetry import TrainingReport, build_report, fit_scope
from ..types import KernelType
from .cg import conjugate_gradient_block
from .estimator import ParamsMixin, apply_config, warn_deprecated_flat_kwargs
from .incremental import IncrementalEngine
from .lssvm import LSSVC
from .model import FeatureMapModel, LSSVMModel
from .precond import make_preconditioner
from .qmatrix import build_reduced_system
from .solvers import (
    SolverInfo,
    fit_rff_primal_multi,
    resolve_solver,
    solve_nystrom_block,
)

__all__ = ["OneVsAllLSSVC", "OneVsOneLSSVC"]

#: Config fields the multiclass wrappers expose as constructor keywords;
#: a passed config carrying a non-default value outside these raises.
_MC_SOLVER_FIELDS = (
    "solver",
    "solver_rank",
    "solver_seed",
    "polish_iters",
    "precondition",
    "precond_rank",
)
_MC_RESOURCE_FIELDS = (
    "solver_threads",
    "tile_cache_mb",
    "compute_dtype",
    "memory_budget_mb",
    "shard_rows",
)


def _unique_labels(y: np.ndarray) -> np.ndarray:
    labels = np.unique(np.asarray(y).ravel())
    if labels.size < 2:
        raise DataError("multi-class training requires at least two classes")
    return labels


def _positive_first(X: np.ndarray, binary: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Reorder so a +1 sample leads the arrays.

    The binary estimators follow LIBSVM's convention of mapping the
    *first-seen* label to the internal positive class, which would flip the
    sign of ``decision_function`` whenever a -1 sample happens to come
    first. Swapping one positive sample to index 0 pins the orientation.
    """
    if binary[0] == 1.0:
        return X, binary
    pos = int(np.argmax(binary == 1.0))
    order = np.arange(binary.shape[0])
    order[0], order[pos] = order[pos], order[0]
    return X[order], binary[order]


class _MulticlassBase(ParamsMixin):
    """Shared constructor/plumbing of the two decompositions."""

    def __init__(
        self,
        kernel: Union[str, int, KernelType] = "linear",
        C: float = 1.0,
        *,
        gamma: Optional[float] = None,
        degree: int = 3,
        coef0: float = 0.0,
        epsilon: float = 1e-3,
        implicit: Optional[bool] = None,
        precondition: Union[None, str, object] = None,
        precond_rank: Optional[int] = None,
        compute_dtype=None,
        solver_threads: Optional[int] = None,
        tile_cache_mb: Optional[float] = None,
        solver: str = "cg",
        solver_rank: Optional[int] = None,
        solver_seed: Union[None, int, np.random.Generator] = 0,
        polish_iters: int = 0,
        estimator_factory: Optional[Callable[[], object]] = None,
        memory_budget_mb: Optional[float] = None,
        shard_rows: Optional[int] = None,
        config: Optional[SolverConfig] = None,
        resources: Optional[ResourceConfig] = None,
    ) -> None:
        self.kernel = kernel
        self.C = C
        self.gamma = gamma
        self.degree = degree
        self.coef0 = coef0
        self.epsilon = epsilon
        self.implicit = implicit
        self.precondition = precondition
        self.precond_rank = precond_rank
        self.compute_dtype = compute_dtype
        self.solver_threads = solver_threads
        self.tile_cache_mb = tile_cache_mb
        self.solver = solver
        self.solver_rank = solver_rank
        self.solver_seed = solver_seed
        self.polish_iters = polish_iters
        self.estimator_factory = estimator_factory
        self.memory_budget_mb = memory_budget_mb
        self.shard_rows = shard_rows
        self.config = config
        self.resources = resources
        warn_deprecated_flat_kwargs(
            self, (SolverConfig, config), (ResourceConfig, resources)
        )
        self._sync_params()
        self.classes_: Optional[np.ndarray] = None

    def _sync_params(self) -> None:
        # The grouped configs are authoritative over the flat attributes;
        # any parameter change also invalidates the stacked-coefficient
        # prediction cache and an in-flight incremental continuation.
        apply_config(
            self, getattr(self, "config", None), supported=_MC_SOLVER_FIELDS
        )
        apply_config(
            self, getattr(self, "resources", None), supported=_MC_RESOURCE_FIELDS
        )
        self._predict_state = None
        self._engine = None

    @property
    def _default_factory(self) -> bool:
        # The shared block solve builds the reduced system itself; it only
        # applies when the machines are the default LSSVC (a custom factory
        # may wrap any estimator, whose fit we must not bypass).
        return self.estimator_factory is None

    def _make_estimator(self):
        """One fresh binary machine, resolved at fit time.

        Resolving here (instead of capturing the hyper-parameters in a
        closure at construction) keeps :meth:`set_params` effective: the
        machines always see the estimator's *current* parameters.
        """
        if self.estimator_factory is not None:
            return self.estimator_factory()
        # Grouped-config form: keeps the machines' construction silent
        # under the flat-keyword deprecation.
        return LSSVC(
            kernel=self.kernel,
            C=self.C,
            gamma=self.gamma,
            degree=self.degree,
            coef0=self.coef0,
            epsilon=self.epsilon,
            implicit=self.implicit,
            config=SolverConfig(
                solver=self.solver,
                solver_rank=self.solver_rank,
                solver_seed=self.solver_seed,
                polish_iters=self.polish_iters,
                precondition=self.precondition,
                precond_rank=self.precond_rank,
            ),
            resources=ResourceConfig(
                solver_threads=self.solver_threads,
                tile_cache_mb=self.tile_cache_mb,
                compute_dtype=self.compute_dtype,
                memory_budget_mb=self.memory_budget_mb,
                shard_rows=self.shard_rows,
            ),
        )

    def _require_fitted(self) -> None:
        if self.classes_ is None:
            raise NotFittedError(f"{type(self).__name__} is not fitted yet")

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy over the (multi-class) labels."""
        y = np.asarray(y).ravel()
        pred = self.predict(X)
        if pred.shape[0] != y.shape[0]:
            raise DataError("label vector length does not match data")
        return float(np.mean(pred == y))


class OneVsAllLSSVC(_MulticlassBase):
    """One-vs-all (one-vs-rest) multi-class LS-SVM.

    Trains ``K`` binary machines; machine ``k`` separates class ``k``
    (+1) from all other classes (-1). Ties resolve to the machine with the
    largest decision value — the LS-SVM's decision values are calibrated
    against the +/-1 targets, making argmax meaningful.

    All ``K`` machines share the same training points, so their reduced
    systems share the same ``Q_tilde`` — only the right-hand sides differ
    (``y`` re-signed per class). The default path therefore assembles
    **one** operator and solves all ``K`` systems with a single block-CG
    run: one kernel-tile sweep per iteration for the whole ensemble,
    instead of ``K`` independent sweeps. ``shared_solve=False`` (or a
    custom ``estimator_factory``) falls back to per-class fits.
    """

    def __init__(
        self,
        kernel: Union[str, int, KernelType] = "linear",
        C: float = 1.0,
        *,
        gamma: Optional[float] = None,
        degree: int = 3,
        coef0: float = 0.0,
        epsilon: float = 1e-3,
        implicit: Optional[bool] = None,
        precondition: Union[None, str, object] = None,
        precond_rank: Optional[int] = None,
        compute_dtype=None,
        solver_threads: Optional[int] = None,
        tile_cache_mb: Optional[float] = None,
        solver: str = "cg",
        solver_rank: Optional[int] = None,
        solver_seed: Union[None, int, np.random.Generator] = 0,
        polish_iters: int = 0,
        estimator_factory: Optional[Callable[[], object]] = None,
        shared_solve: bool = True,
        memory_budget_mb: Optional[float] = None,
        shard_rows: Optional[int] = None,
        config: Optional[SolverConfig] = None,
        resources: Optional[ResourceConfig] = None,
        warm_start: bool = False,
    ) -> None:
        # The signature is spelled out (no *args/**kwargs passthrough) so
        # the ParamsMixin introspection sees every parameter.
        super().__init__(
            kernel,
            C,
            gamma=gamma,
            degree=degree,
            coef0=coef0,
            epsilon=epsilon,
            implicit=implicit,
            precondition=precondition,
            precond_rank=precond_rank,
            compute_dtype=compute_dtype,
            solver_threads=solver_threads,
            tile_cache_mb=tile_cache_mb,
            solver=solver,
            solver_rank=solver_rank,
            solver_seed=solver_seed,
            polish_iters=polish_iters,
            estimator_factory=estimator_factory,
            memory_budget_mb=memory_budget_mb,
            shard_rows=shard_rows,
            config=config,
            resources=resources,
        )
        self.shared_solve = bool(shared_solve)
        self.warm_start = bool(warm_start)
        self.report_: Optional[TrainingReport] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "OneVsAllLSSVC":
        from ..io.chunked import is_row_source  # deferred: io imports core

        y = np.asarray(y).ravel()
        # Warm start: stack the previous ensemble's multipliers before the
        # machines are discarded (only a shared support set maps onto the
        # new block unknown).
        self._warm_prev = None
        if self.warm_start and getattr(self, "machines_", None):
            models = [getattr(m, "model_", None) for m in self.machines_]
            if models and all(isinstance(mod, LSSVMModel) for mod in models):
                sv = models[0].support_vectors
                if all(mod.support_vectors is sv for mod in models[1:]):
                    self._warm_prev = np.column_stack([mod.alpha for mod in models])
        self._engine = None
        self._train_targets = None
        self._predict_state = None
        self.classes_ = _unique_labels(y)
        self.machines_: List[object] = []
        if not is_row_source(X):
            X = np.asarray(X)
        elif not (self.shared_solve and self._default_factory):
            raise InvalidParameterError(
                "chunked/row-source training data requires the shared block "
                "solve (shared_solve=True with the default estimator factory)"
            )
        if self.shared_solve and self._default_factory:
            return self._fit_shared(X, y)
        for label in self.classes_:
            binary = np.where(y == label, 1.0, -1.0)
            if not np.any(binary == 1.0):
                raise DataError(f"class {label} has no samples")
            X_ord, binary_ord = _positive_first(X, binary)
            clf = self._make_estimator()
            clf.fit(X_ord, binary_ord)
            self.machines_.append(clf)
        return self

    def _fit_shared(self, X: np.ndarray, y: np.ndarray) -> "OneVsAllLSSVC":
        """Train every one-vs-rest machine from one block solve.

        The per-class systems differ only in their labels: the reduced
        matrix of Eq. 14 depends on ``X`` (and ``C``) alone, while the
        right-hand side ``y_bar - y_m * 1`` and the bias recovery of
        Eq. 15 take the class-specific ``+1/-1`` targets. No reordering is
        needed (unlike :func:`_positive_first` on the legacy path): the
        orientation is pinned by constructing the targets as +1 for the
        class itself.
        """
        from ..io.chunked import is_row_source  # deferred: io imports core

        param = Parameter(
            kernel=self.kernel,
            cost=self.C,
            gamma=self.gamma,
            degree=self.degree,
            coef0=self.coef0,
            epsilon=self.epsilon,
        )
        if not is_row_source(X):
            X = np.ascontiguousarray(X, dtype=param.dtype)
        # (m, K) matrix of per-class +1/-1 targets.
        Y = np.stack(
            [np.where(y == label, 1.0, -1.0) for label in self.classes_], axis=1
        )
        solver = resolve_solver(self.solver)
        warm_iterations = 0
        # Reset the kernel RSS high-water mark before the wall clock
        # starts so the /proc write does not count against the fit.
        reset_peak_rss()
        with fit_scope(
            "OneVsAllLSSVC.fit", estimator="OneVsAllLSSVC", classes=len(self.classes_)
        ) as ctx, memory_budget(self.memory_budget_mb):
            if solver == "rff":
                # The random-feature primal shares even more than the
                # reduced system: one feature map, one Gram accumulation,
                # K right-hand sides of one (r+1)-dimensional solve.
                fmap, W, biases, result, info = fit_rff_primal_multi(
                    X, Y, param, rank=self.solver_rank, rng=self.solver_seed
                )
                resolved = param.with_gamma_for(X.shape[1])
                seed = self.solver_seed if isinstance(self.solver_seed, int) else None
                for j, _ in enumerate(self.classes_):
                    clf = self._make_estimator()
                    clf.model_ = FeatureMapModel(
                        omega=fmap.omega,
                        offsets=fmap.offsets,
                        weights=np.ascontiguousarray(W[:, j]),
                        bias=float(biases[j]),
                        param=resolved,
                        labels=(1.0, -1.0),
                        seed=seed,
                    )
                    clf.result_ = result.column(j)
                    self.machines_.append(clf)
            else:
                with ctx.span("assembly"):
                    qmat, _ = build_reduced_system(
                        X,
                        Y[:, 0],
                        param,
                        implicit=self.implicit,
                        solver_threads=self.solver_threads,
                        tile_cache_mb=self.tile_cache_mb,
                        compute_dtype=self.compute_dtype,
                        shard_rows=self.shard_rows,
                    )
                sample_peak_rss(ctx)
                B = Y[:-1, :] - Y[-1:, :]  # per-class rhs of Eq. 14
                if solver == "nystrom":
                    result, info = solve_nystrom_block(
                        qmat,
                        B,
                        rank=self.solver_rank,
                        rng=self.solver_seed,
                        polish_iters=self.polish_iters,
                        epsilon=self.epsilon,
                    )
                else:
                    info = SolverInfo()
                    precond = make_preconditioner(
                        qmat, self.precondition, rank=self.precond_rank, rng=0
                    )
                    X0 = None
                    prev = getattr(self, "_warm_prev", None)
                    n = B.shape[0]
                    if prev is not None and prev.shape[1] == len(self.classes_):
                        if prev.shape[0] == n + 1:
                            # Same-size refit: drop the recovered
                            # eliminated row.
                            X0 = np.array(prev[:n], dtype=qmat.dtype)
                        elif 0 < prev.shape[0] <= n:
                            X0 = np.zeros((n, prev.shape[1]), dtype=qmat.dtype)
                            X0[: prev.shape[0]] = prev
                    result = conjugate_gradient_block(
                        qmat,
                        B,
                        epsilon=self.epsilon,
                        max_iter=param.max_iter,
                        preconditioner=precond,
                        X0=X0,
                    )
                    if X0 is not None:
                        warm_iterations = result.iterations
                for j, _ in enumerate(self.classes_):
                    alpha_bar = result.X[:, j]
                    s = float(alpha_bar.sum())
                    # Eq. 15 with this machine's eliminated target Y[-1, j].
                    bias = (
                        float(Y[-1, j]) + qmat.q_mm * s - float(qmat.q_bar @ alpha_bar)
                    )
                    alpha = np.concatenate(
                        [alpha_bar, np.asarray([-s], dtype=qmat.dtype)]
                    )
                    clf = self._make_estimator()
                    clf.model_ = LSSVMModel(
                        support_vectors=qmat.X,
                        alpha=alpha,
                        bias=bias,
                        param=qmat.param,
                        labels=(1.0, -1.0),
                    )
                    clf.result_ = result.column(j)
                    self.machines_.append(clf)
            sample_peak_rss(ctx)
        # Keep the target block so partial_fit can continue this fit.
        self._train_targets = Y if isinstance(X, np.ndarray) else None
        self.report_ = build_report(
            ctx,
            estimator="OneVsAllLSSVC",
            backend="numpy (shared block solve)",
            num_samples=X.shape[0],
            num_features=X.shape[1],
            result=result,
            solver_strategy=info.strategy,
            solver_rank=info.rank,
            solver_setup_seconds=info.setup_seconds,
            warm_start_iterations=warm_iterations,
        )
        return self

    def partial_fit(self, X: np.ndarray, y: np.ndarray) -> "OneVsAllLSSVC":
        """Extend the shared training set by a chunk and refit all machines.

        One warm-started block-CG solve updates the whole ensemble: the
        accumulated kernel matrix grows by the new rows only, and every
        machine's previous multiplier column seeds the block initial
        guess. The first call must contain every class (it fixes
        ``classes_``); later chunks may contain any subset. A zero-row
        chunk is a bit-exact no-op. Continuing after a regular
        :meth:`fit` reuses that fit's solution (one kernel bootstrap on
        the first chunk).

        Machines' models are mutated in place with their caches
        invalidated, so live serving handles observe the refreshed
        ensemble. Requires the default shared solve with ``solver="cg"``
        and no row sharding.
        """
        if not (self.shared_solve and self._default_factory):
            raise InvalidParameterError(
                "partial_fit requires the shared block solve "
                "(shared_solve=True with the default estimator factory)"
            )
        if resolve_solver(self.solver) != "cg":
            raise InvalidParameterError("partial_fit requires solver='cg'")
        if self.shard_rows is not None:
            raise InvalidParameterError(
                "partial_fit does not support row sharding"
            )
        param = Parameter(
            kernel=self.kernel,
            cost=self.C,
            gamma=self.gamma,
            degree=self.degree,
            coef0=self.coef0,
            epsilon=self.epsilon,
        )
        X = np.asarray(X, dtype=param.dtype)
        if X.ndim != 2:
            raise DataError("training data must be 2-D")
        if X.shape[0] == 0:
            if self.classes_ is None:
                raise DataError("the first partial_fit chunk is empty")
            return self  # bit-exact no-op
        y = np.asarray(y).ravel()
        if y.shape[0] != X.shape[0]:
            raise DataError("label vector length does not match data")
        engine = getattr(self, "_engine", None)
        if engine is None:
            engine = IncrementalEngine(
                param,
                precondition=self.precondition,
                precond_rank=self.precond_rank,
                solver_threads=self.solver_threads,
                tile_cache_mb=self.tile_cache_mb,
                compute_dtype=self.compute_dtype,
            )
            if self.implicit is True:
                engine.explicit_limit = 0
            elif self.implicit is False:
                engine.explicit_limit = 2**62
            if self.classes_ is not None:
                # Continue from a previous shared fit.
                models = [getattr(m, "model_", None) for m in self.machines_]
                targets = getattr(self, "_train_targets", None)
                shared = (
                    models
                    and all(isinstance(mod, LSSVMModel) for mod in models)
                    and all(
                        mod.support_vectors is models[0].support_vectors
                        for mod in models[1:]
                    )
                )
                if not shared or targets is None:
                    raise InvalidParameterError(
                        "cannot continue incrementally from the previous fit "
                        "(machines do not share an appendable support set); "
                        "start from a fresh estimator"
                    )
                engine.seed(
                    models[0].support_vectors,
                    targets,
                    np.column_stack([mod.alpha for mod in models]),
                )
            else:
                self.classes_ = _unique_labels(y)
                self.machines_ = [
                    self._make_estimator() for _ in self.classes_
                ]
            self._engine = engine
        unknown = ~np.isin(y, self.classes_)
        if unknown.any():
            raise DataError(
                f"chunk contains labels outside classes_ "
                f"({np.unique(y[unknown])})"
            )
        Y = np.stack(
            [np.where(y == label, 1.0, -1.0) for label in self.classes_], axis=1
        )
        reset_peak_rss()
        with fit_scope(
            "OneVsAllLSSVC.partial_fit",
            estimator="OneVsAllLSSVC",
            classes=len(self.classes_),
        ) as ctx, memory_budget(self.memory_budget_mb):
            with ctx.span(
                "refit", new_rows=X.shape[0], total_rows=engine.num_rows + X.shape[0]
            ):
                res = engine.update(X, Y)
            sample_peak_rss(ctx)
            for j, clf in enumerate(self.machines_):
                alpha_j = np.ascontiguousarray(res.alpha[:, j])
                model = getattr(clf, "model_", None)
                if isinstance(model, LSSVMModel):
                    model.support_vectors = engine.X
                    model.alpha = alpha_j
                    model.bias = float(res.bias[j])
                    model.param = engine.param
                    model.labels = (1.0, -1.0)
                    model.invalidate_caches()
                else:
                    clf.model_ = LSSVMModel(
                        support_vectors=engine.X,
                        alpha=alpha_j,
                        bias=float(res.bias[j]),
                        param=engine.param,
                        labels=(1.0, -1.0),
                    )
                clf.result_ = res.result.column(j)
            # Drop the stacked-coefficient prediction cache: the support
            # set object changed, the next decision_matrix rebuilds it.
            self._predict_state = None
            sample_peak_rss(ctx)
        self._train_targets = engine.y
        self.report_ = build_report(
            ctx,
            estimator="OneVsAllLSSVC",
            backend="numpy (shared block solve)",
            num_samples=engine.num_rows,
            num_features=engine.X.shape[1],
            result=res.result,
            warm_start_iterations=res.warm_start_iterations,
        )
        return self

    def _shared_predict_state(self):
        """Stacked coefficients when every machine shares one support set.

        The shared block solve gives all K machines the *same* support
        vector array (one object); their decision values then differ only
        by alpha column and bias, so the whole ensemble's decision matrix
        is one cross-kernel sweep ``K(X, SV) @ A + b`` — the serving-side
        twin of the training-side "one assembly, one block solve"
        optimization — instead of K independent kernel evaluations.
        Returns ``None`` when the machines do not share a support set
        (custom factory / legacy per-class fits with reordered rows).
        """
        models = [getattr(m, "model_", None) for m in self.machines_]
        if not models or any(mod is None for mod in models):
            return None
        if all(isinstance(mod, FeatureMapModel) for mod in models):
            # Compact ensemble from the shared rff fit: every machine
            # shares one feature map object, so the decision matrix is a
            # single z(X) @ W + b — one transform for all K classes.
            key = models[0].omega
            if any(mod.omega is not key for mod in models[1:]):
                return None
            cached = getattr(self, "_predict_state", None)
            if cached is not None and cached[0] is key and len(cached[2]) == len(models):
                return cached
            param = models[0].param
            W = np.column_stack([mod.weights for mod in models])
            biases = np.asarray([mod.bias for mod in models], dtype=param.dtype)
            state = (key, param, biases, None, W, None, models[0].transform)
            self._predict_state = state
            return state
        if any(isinstance(mod, FeatureMapModel) for mod in models):
            return None
        sv = models[0].support_vectors
        if any(mod.support_vectors is not sv for mod in models[1:]):
            return None
        cached = getattr(self, "_predict_state", None)
        if cached is not None and cached[0] is sv and len(cached[2]) == len(models):
            return cached
        param = models[0].param
        A = np.column_stack([mod.alpha for mod in models])
        biases = np.asarray([mod.bias for mod in models], dtype=param.dtype)
        if param.kernel is KernelType.LINEAR:
            pipeline = None
            W = np.column_stack([mod.weight_vector() for mod in models])
        else:
            from .tile_pipeline import TilePipeline

            W = None
            pipeline = TilePipeline(
                sv,
                param.kernel,
                gamma=param.gamma,
                degree=param.degree,
                coef0=param.coef0,
                num_threads=self.solver_threads,
                cache_mb=0.0,
                dtype=param.dtype,
                compute_dtype=self.compute_dtype,
            )
        state = (sv, param, biases, A, W, pipeline, None)
        self._predict_state = state
        return state

    def decision_matrix(self, X: np.ndarray) -> np.ndarray:
        """Per-class decision values, shape ``(len(X), num_classes)``.

        When the machines share one support set (the default shared-solve
        fit), all K columns come from a single warm tile-pipeline sweep;
        otherwise each machine evaluates independently.
        """
        self._require_fitted()
        state = self._shared_predict_state()
        if state is not None:
            _, param, biases, A, W, pipeline, transform = state
            Xd = np.asarray(X, dtype=param.dtype)
            if Xd.ndim == 1:
                Xd = Xd[None, :]
            if W is not None:
                Z = Xd if transform is None else transform(Xd)
                return Z @ W + biases
            return pipeline.cross_sweep(Xd, A) + biases
        columns = [np.atleast_1d(m.decision_function(X)) for m in self.machines_]
        return np.column_stack(columns)

    def predict(self, X: np.ndarray) -> np.ndarray:
        scores = self.decision_matrix(X)
        return self.classes_[np.argmax(scores, axis=1)]


class OneVsOneLSSVC(_MulticlassBase):
    """One-vs-one multi-class LS-SVM (LIBSVM's decomposition).

    Trains ``K (K-1) / 2`` pairwise machines on the two classes' points
    only. Prediction is by vote; ties break on the summed decision values
    in favour of the class the tied machines are more confident about.
    """

    def fit(self, X: np.ndarray, y: np.ndarray) -> "OneVsOneLSSVC":
        from ..io.chunked import is_row_source  # deferred: io imports core

        # Row sources are supported by gathering each pair's (smaller)
        # subset — pairwise machines need reordered dense subsets anyway.
        source = X if is_row_source(X) else None
        if source is None:
            X = np.asarray(X)
        y = np.asarray(y).ravel()
        self.classes_ = _unique_labels(y)
        self.pairs_: List[Tuple[float, float]] = []
        self.machines_ = []
        for a, b in itertools.combinations(self.classes_, 2):
            mask = (y == a) | (y == b)
            if np.all(y[mask] == y[mask][0]):
                raise DataError(f"classes {a} and {b} are not both present")
            binary = np.where(y[mask] == a, 1.0, -1.0)
            X_pair = (
                source.gather_rows(np.nonzero(mask)[0])
                if source is not None
                else X[mask]
            )
            X_ord, binary_ord = _positive_first(X_pair, binary)
            clf = self._make_estimator()
            clf.fit(X_ord, binary_ord)
            self.pairs_.append((float(a), float(b)))
            self.machines_.append(clf)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted()
        X = np.asarray(X)
        n = X.shape[0] if X.ndim == 2 else 1
        class_index: Dict[float, int] = {
            float(c): i for i, c in enumerate(self.classes_)
        }
        votes = np.zeros((n, len(self.classes_)), dtype=np.int64)
        confidence = np.zeros((n, len(self.classes_)), dtype=np.float64)
        for (a, b), clf in zip(self.pairs_, self.machines_):
            f = np.atleast_1d(clf.decision_function(X))
            ia, ib = class_index[a], class_index[b]
            a_wins = f >= 0
            votes[a_wins, ia] += 1
            votes[~a_wins, ib] += 1
            confidence[:, ia] += f
            confidence[:, ib] -= f
        # Majority vote; break ties by accumulated confidence.
        best = np.zeros(n, dtype=np.int64)
        for i in range(n):
            top = votes[i].max()
            tied = np.nonzero(votes[i] == top)[0]
            best[i] = tied[np.argmax(confidence[i, tied])]
        return self.classes_[best]

    @property
    def num_machines(self) -> int:
        self._require_fitted()
        return len(self.machines_)
