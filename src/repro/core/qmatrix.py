"""The reduced LS-SVM system of Chu et al. (paper Eq. 11-16).

Training an LS-SVM means solving the ``(m) x (m+1)``-style saddle system of
Eq. 11. Chu et al. eliminate the bias row and the last multiplier, leaving a
symmetric positive definite ``(m-1) x (m-1)`` system

    Q_tilde @ alpha_bar = y_bar - y_m * 1                       (Eq. 14)

with (Eq. 16)

    Q_tilde[i, j] = k(x_i, x_j) + delta_ij / C
                    - k(x_m, x_j) - k(x_i, x_m)
                    + k(x_m, x_m) + 1 / C.

Two realizations are provided:

* :class:`ExplicitQMatrix` materializes the full matrix — O(m²) memory,
  used for small problems, tests, and as the ground truth the implicit
  variant is verified against.
* :class:`ImplicitQMatrix` is matrix-free (§III-B): each matvec recomputes
  the kernel entries on the fly. The ``q`` vector ``q_bar[i] = k(x_i, x_m)``
  is precomputed once (§III-C2, "Caching"), which turns the three kernel
  evaluations per entry into one. For the linear kernel the matvec
  collapses into two BLAS-2 products against the data matrix
  (``X_bar @ (X_bar.T @ v)``), making it O(m d) instead of O(m² d).

Both classes share the rank-one correction algebra

    Q_tilde @ v = K_bar @ v + v / C
                  - ones * <q_bar, v> - q_bar * sum(v)
                  + (k_mm + 1/C) * sum(v) * ones
"""

from __future__ import annotations

import abc
from typing import Optional, Tuple

import numpy as np

from ..exceptions import DataError, InvalidParameterError
from ..membudget import active_memory_budget, format_bytes
from ..parameter import Parameter
from ..types import KernelType
from .kernels import kernel_diagonal, kernel_matrix, kernel_row, kernel_scalar

__all__ = [
    "QMatrixBase",
    "ExplicitQMatrix",
    "ImplicitQMatrix",
    "build_reduced_system",
    "reduced_rhs",
    "recover_bias_and_alpha",
]

#: Materializing Q_tilde above this many training points is refused by
#: :func:`build_reduced_system`'s automatic mode (the matrix would need
#: ``(m-1)^2 * 8`` bytes).
EXPLICIT_LIMIT = 4096

#: Default row-block height of the streaming protocol
#: (:meth:`QMatrixBase.iter_row_blocks`).
DEFAULT_ROW_BLOCK = 4096


def _validate_training_data(
    X: np.ndarray, y: np.ndarray, dtype: np.dtype, *, binary_labels: bool = True
) -> Tuple[np.ndarray, np.ndarray]:
    X = np.ascontiguousarray(np.asarray(X, dtype=dtype))
    y = np.asarray(y, dtype=dtype).ravel()
    if X.ndim != 2:
        raise DataError(f"training data must be 2-D, got ndim={X.ndim}")
    if X.shape[0] != y.shape[0]:
        raise DataError(
            f"number of points ({X.shape[0]}) and labels ({y.shape[0]}) differ"
        )
    if X.shape[0] < 2:
        raise DataError("LS-SVM training requires at least two data points")
    if X.shape[1] < 1:
        raise DataError("training data has no features")
    if binary_labels:
        labels = np.unique(y)
        if not np.all(np.isin(labels, (-1.0, 1.0))):
            raise DataError(f"labels must be -1/+1, got {labels[:8]}")
        if labels.size < 2:
            raise DataError("training data contains only a single class")
    elif not np.all(np.isfinite(y)):
        raise DataError("regression targets contain NaN or infinite values")
    if not np.all(np.isfinite(X)):
        raise DataError("training data contains NaN or infinite values")
    return X, y


class QMatrixBase(abc.ABC):
    """Common interface of the explicit and implicit Q_tilde realizations.

    Parameters
    ----------
    ridge:
        Optional per-point ridge vector replacing the uniform ``1/C``
        diagonal. Used by the weighted LS-SVM extension (Suykens et al.,
        "Weighted least squares support vector machines"): point ``i``'s
        ridge is ``1 / (C * v_i)`` for a robustness weight ``v_i``. The
        reduction of Eq. 13 goes through unchanged because the eliminated
        row/column only ever sees ``Q_mm = k_mm + ridge_m``.
    binary_labels:
        The LS-SVM *regression* extension reuses the same reduced system
        with real-valued targets; it disables the +/-1 label check.
    """

    def __init__(
        self,
        X: np.ndarray,
        y: np.ndarray,
        param: Parameter,
        *,
        ridge: Optional[np.ndarray] = None,
        binary_labels: bool = True,
    ) -> None:
        X, y = _validate_training_data(X, y, param.dtype, binary_labels=binary_labels)
        param = param.with_gamma_for(X.shape[1])
        self.X = X
        self.X_bar = X[:-1]
        self.x_m = X[-1]
        kw = param.kernel_kwargs()
        # q_bar[i] = k(x_i, x_m) for i < m (no delta term since i != m).
        q_bar = kernel_row(self.x_m, self.X_bar, param.kernel, **kw).astype(
            param.dtype, copy=False
        )
        k_mm = kernel_scalar(self.x_m, self.x_m, param.kernel, **kw)
        self._finish_init(y, param, q_bar, k_mm, ridge=ridge)

    def _finish_init(
        self,
        y: np.ndarray,
        param: Parameter,
        q_bar: np.ndarray,
        k_mm: float,
        *,
        ridge: Optional[np.ndarray] = None,
    ) -> None:
        """Shared tail of construction once ``q_bar``/``k_mm`` are known.

        Subclasses that never hold dense ``X`` (the row-sharded operator)
        compute ``q_bar`` by streaming and then call this directly instead
        of ``QMatrixBase.__init__``.
        """
        m = q_bar.shape[0] + 1
        self.param = param
        self.y = y
        self.y_bar = y[:-1]
        self.y_m = float(y[-1])
        self.q_bar = q_bar
        self.k_mm = float(k_mm)
        self.inv_cost = 1.0 / param.cost
        if ridge is None:
            self.ridge_bar = np.full(m - 1, self.inv_cost, dtype=param.dtype)
            self.ridge_m = self.inv_cost
        else:
            ridge = np.asarray(ridge, dtype=param.dtype).ravel()
            if ridge.shape[0] != m:
                raise DataError(
                    f"ridge vector length {ridge.shape[0]} does not match "
                    f"{m} data points"
                )
            if np.any(ridge <= 0) or not np.all(np.isfinite(ridge)):
                raise DataError("ridge entries must be positive and finite")
            self.ridge_bar = ridge[:-1].copy()
            self.ridge_m = float(ridge[-1])
        # Q_mm of Eq. 12 includes the eliminated point's ridge: the trailing
        # "+ 1/C" of Eq. 16 is exactly Q_mm = k_mm + ridge_m.
        self.q_mm = self.k_mm + self.ridge_m
        self.num_matvecs = 0

    @property
    def shape(self) -> Tuple[int, int]:
        n = self.q_bar.shape[0]
        return (n, n)

    @property
    def dtype(self) -> np.dtype:
        return self.param.dtype

    def _rank_one_terms(self, v: np.ndarray) -> np.ndarray:
        """The shared low-rank correction: ``ridge*v - 1<q,v> - q*sum(v) + q_mm*sum(v)*1``."""
        s = float(v.sum())
        qv = float(self.q_bar @ v)
        out = self.ridge_bar * v
        out -= qv
        out -= s * self.q_bar
        out += self.q_mm * s
        return out

    def _rank_one_terms_multi(self, V: np.ndarray) -> np.ndarray:
        """Column-wise :meth:`_rank_one_terms` for a block ``V`` of vectors."""
        s = V.sum(axis=0)
        qv = self.q_bar @ V
        out = self.ridge_bar[:, None] * V
        out -= qv[None, :]
        out -= self.q_bar[:, None] * s[None, :]
        out += self.q_mm * s[None, :]
        return out

    @abc.abstractmethod
    def _kernel_matvec(self, v: np.ndarray) -> np.ndarray:
        """``K_bar @ v`` where ``K_bar[i,j] = k(x_i, x_j)`` over the first m-1 points."""

    def _kernel_matvec_multi(self, V: np.ndarray) -> np.ndarray:
        """``K_bar @ V`` for a block of vectors; default is a column loop.

        Subclasses that can batch the kernel work (one tile sweep for all
        columns) override this — that is the whole point of block CG.
        """
        return np.column_stack([self._kernel_matvec(V[:, j]) for j in range(V.shape[1])])

    def _apply(self, v: np.ndarray) -> np.ndarray:
        """``Q_tilde @ v`` without touching the solver matvec counter."""
        return self._kernel_matvec(v) + self._rank_one_terms(v)

    def matvec(self, v: np.ndarray) -> np.ndarray:
        """Compute ``Q_tilde @ v``."""
        v = np.asarray(v, dtype=self.dtype).ravel()
        if v.shape[0] != self.shape[0]:
            raise DataError(
                f"vector length {v.shape[0]} does not match system size {self.shape[0]}"
            )
        self.num_matvecs += 1
        return self._apply(v)

    def matvec_multi(self, V: np.ndarray) -> np.ndarray:
        """Compute ``Q_tilde @ V`` for a block ``V`` of shape ``(n, k)``.

        Counts as ``k`` logical matvecs (the quantity profiling reports),
        even though subclasses with a tile pipeline perform only *one*
        kernel sweep for the whole block.
        """
        V = np.asarray(V, dtype=self.dtype)
        if V.ndim == 1:
            V = V[:, None]
        if V.ndim != 2 or V.shape[0] != self.shape[0]:
            raise DataError(
                f"block of shape {V.shape} does not match system size {self.shape[0]}"
            )
        self.num_matvecs += V.shape[1]
        return self._kernel_matvec_multi(V) + self._rank_one_terms_multi(V)

    def __matmul__(self, v: np.ndarray) -> np.ndarray:
        return self.matvec(v)

    # -- row-block iterator protocol --------------------------------------
    #
    # Consumers that need training rows (preconditioner pivot gathers, the
    # rff/nystrom solver fits, the streaming diagonal) go through these
    # three methods instead of reading dense ``X`` directly, so operators
    # backed by an out-of-core ChunkedDataset work without ever
    # materializing the matrix. The base implementations slice the
    # in-memory ``X_bar``; RowShardedQMatrix overrides them to stream.

    def iter_row_blocks(self, block_rows: Optional[int] = None):
        """Yield ``(start, stop, block)`` over the first ``m-1`` points.

        Blocks arrive in order and cover ``[0, m-1)`` exactly once. The
        in-memory default yields views (no copies); streaming operators
        yield freshly-read arrays bounded by their byte budget.
        """
        n = self.shape[0]
        step = int(block_rows) if block_rows else max(n, 1)
        for start in range(0, n, step):
            stop = min(start + step, n)
            yield start, stop, self.X_bar[start:stop]

    def gather_rows(self, indices) -> np.ndarray:
        """Training rows (of the first ``m-1``) at ``indices``, dense.

        RPCholesky preconditioner setup gathers its pivot rows through
        this — O(rank) rows, never the full matrix.
        """
        return np.asarray(self.X_bar[np.asarray(indices, dtype=np.intp)])

    def kernel_column(self, s: int) -> np.ndarray:
        """Column ``s`` of ``K_bar`` (``k(x_i, x_s)`` for ``i < m-1``).

        Streams through :meth:`iter_row_blocks`, so a preconditioner can
        factor rank-``r`` columns against an out-of-core operator in
        O(block) memory.
        """
        x_s = self.gather_rows([int(s)])[0]
        kw = self.param.kernel_kwargs()
        out = np.empty(self.shape[0], dtype=self.dtype)
        for start, stop, block in self.iter_row_blocks():
            out[start:stop] = kernel_row(x_s, block, self.param.kernel, **kw)
        return out

    def diagonal(self) -> np.ndarray:
        """``diag(Q_tilde)`` without forming the matrix (Eq. 16 at i = j).

        ``Q_tilde[i, i] = k(x_i, x_i) + ridge_i - 2 q_bar_i + q_mm`` — the
        single source of truth shared by Jacobi/Nyström preconditioner
        setup, the classifier's legacy ``jacobi=True`` path, and the
        multi-class block solve. Computed block-wise via the row-block
        protocol so it holds for streaming operators too.
        """
        kw = self.param.kernel_kwargs()
        diag = np.empty(self.shape[0], dtype=self.dtype)
        for start, stop, block in self.iter_row_blocks():
            diag[start:stop] = kernel_diagonal(block, self.param.kernel, **kw)
        return diag + self.ridge_bar - 2.0 * self.q_bar + self.q_mm

    def rhs(self) -> np.ndarray:
        """Right-hand side of Eq. 14: ``y_bar - y_m * 1``."""
        return reduced_rhs(self.y)

    def to_dense(self) -> np.ndarray:
        """Materialize Q_tilde (intended for tests and small systems).

        Bypasses the matvec counter: the ``n`` products here are test
        scaffolding, not solver work, and must not pollute the per-solve
        matvec counts the profiling layer and benchmarks report.
        """
        n = self.shape[0]
        eye = np.eye(n, dtype=self.dtype)
        cols = [self._apply(eye[i]) for i in range(n)]
        return np.column_stack(cols)


class ExplicitQMatrix(QMatrixBase):
    """Q_tilde held as a dense array; matvec is a single GEMV."""

    def __init__(
        self,
        X: np.ndarray,
        y: np.ndarray,
        param: Parameter,
        *,
        ridge: Optional[np.ndarray] = None,
        binary_labels: bool = True,
    ) -> None:
        super().__init__(X, y, param, ridge=ridge, binary_labels=binary_labels)
        n = self.shape[0]
        budget = active_memory_budget()
        estimate = n * n * np.dtype(self.dtype).itemsize
        if budget is not None and estimate > budget:
            raise InvalidParameterError(
                f"ExplicitQMatrix would materialize the dense "
                f"{n}x{n} reduced system: {estimate} bytes "
                f"({format_bytes(estimate)}) for m={n + 1} training points "
                f"exceeds the active memory budget of {format_bytes(budget)}. "
                f"Use the implicit or row-sharded operator "
                f"(implicit=True / shard_rows), or raise --memory-budget-mb."
            )
        kw = self.param.kernel_kwargs()
        K = kernel_matrix(self.X_bar, self.X_bar, self.param.kernel, **kw)
        K = K.astype(self.dtype, copy=False)
        K += np.diag(self.ridge_bar)
        K -= self.q_bar[None, :]
        K -= self.q_bar[:, None]
        K += self.q_mm
        self._dense = K

    @classmethod
    def from_kernel(
        cls,
        K: np.ndarray,
        X: np.ndarray,
        y: np.ndarray,
        param: Parameter,
        *,
        ridge: Optional[np.ndarray] = None,
        binary_labels: bool = True,
    ) -> "ExplicitQMatrix":
        """Build the corrected system from a precomputed raw kernel matrix.

        ``K`` is the full ``m x m`` kernel Gram matrix ``k(x_i, x_j)`` over
        *all* training points (no ridge, no corrections). The incremental
        engine maintains ``K`` across ``partial_fit`` calls — appending
        ``k`` rows costs only the ``O(m k)`` new kernel entries — and this
        constructor turns it into Q_tilde without re-evaluating a single
        kernel entry: ``q_bar`` is the last column, ``k_mm`` the corner,
        and the dense correction is elementwise O(m²) arithmetic.
        """
        X, y = _validate_training_data(X, y, param.dtype, binary_labels=binary_labels)
        param = param.with_gamma_for(X.shape[1])
        K = np.asarray(K, dtype=param.dtype)
        m = X.shape[0]
        if K.shape != (m, m):
            raise DataError(
                f"kernel matrix of shape {K.shape} does not match "
                f"{m} training points"
            )
        self = cls.__new__(cls)
        self.X = X
        self.X_bar = X[:-1]
        self.x_m = X[-1]
        q_bar = np.array(K[:-1, -1], dtype=param.dtype)
        self._finish_init(y, param, q_bar, float(K[-1, -1]), ridge=ridge)
        n = self.shape[0]
        budget = active_memory_budget()
        estimate = n * n * np.dtype(self.dtype).itemsize
        if budget is not None and estimate > budget:
            raise InvalidParameterError(
                f"ExplicitQMatrix would materialize the dense "
                f"{n}x{n} reduced system ({format_bytes(estimate)}), "
                f"exceeding the active memory budget of {format_bytes(budget)}"
            )
        D = np.array(K[:-1, :-1], dtype=self.dtype)
        D += np.diag(self.ridge_bar)
        D -= self.q_bar[None, :]
        D -= self.q_bar[:, None]
        D += self.q_mm
        self._dense = D
        return self

    @classmethod
    def from_parts(
        cls,
        X: np.ndarray,
        y: np.ndarray,
        param: Parameter,
        q_bar: np.ndarray,
        k_mm: float,
        dense: np.ndarray,
        *,
        ridge: Optional[np.ndarray] = None,
        binary_labels: bool = True,
    ) -> "ExplicitQMatrix":
        """Adopt an externally maintained *corrected* dense system.

        ``dense`` must already be Q_tilde of Eq. 16 — raw kernel block
        plus ridge diagonal minus the ``q_bar`` rank-one terms plus
        ``q_mm`` — and ``q_bar``/``k_mm`` the matching raw kernel values
        against the eliminated (last) point. The incremental engine
        updates its dense system in place across ``partial_fit`` calls
        and wraps each snapshot through this constructor, so no O(m²)
        rebuild ever happens. ``dense`` is adopted by reference (it may
        be a view into a larger capacity buffer); the caller owns its
        lifetime.
        """
        X, y = _validate_training_data(X, y, param.dtype, binary_labels=binary_labels)
        param = param.with_gamma_for(X.shape[1])
        self = cls.__new__(cls)
        self.X = X
        self.X_bar = X[:-1]
        self.x_m = X[-1]
        q_bar = np.asarray(q_bar, dtype=param.dtype)
        self._finish_init(y, param, q_bar, float(k_mm), ridge=ridge)
        n = self.shape[0]
        dense = np.asarray(dense)
        if dense.shape != (n, n):
            raise DataError(
                f"dense system of shape {dense.shape} does not match "
                f"{n + 1} training points"
            )
        if dense.dtype != self.dtype:
            raise DataError(
                f"dense system dtype {dense.dtype} does not match the "
                f"working dtype {self.dtype}"
            )
        self._dense = dense
        return self

    def _kernel_matvec(self, v: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise AssertionError("ExplicitQMatrix overrides _apply directly")

    def _apply(self, v: np.ndarray) -> np.ndarray:
        # _dense already carries the ridge and rank-one corrections.
        return self._dense @ v

    def matvec_multi(self, V: np.ndarray) -> np.ndarray:
        V = np.asarray(V, dtype=self.dtype)
        if V.ndim == 1:
            V = V[:, None]
        if V.ndim != 2 or V.shape[0] != self.shape[0]:
            raise DataError(
                f"block of shape {V.shape} does not match system size {self.shape[0]}"
            )
        self.num_matvecs += V.shape[1]
        return self._dense @ V

    def to_dense(self) -> np.ndarray:
        return np.array(self._dense, copy=True)

    def diagonal(self) -> np.ndarray:
        # _dense already carries the ridge and rank-one corrections.
        return np.ascontiguousarray(np.diagonal(self._dense))


class ImplicitQMatrix(QMatrixBase):
    """Matrix-free Q_tilde: kernel entries are recomputed per use (§III-B).

    The non-linear kernels route through the shared
    :class:`repro.core.tile_pipeline.TilePipeline`: threaded tile
    evaluation with precomputed RBF row norms, and a byte-budgeted
    cross-iteration tile cache so CG iterations after the first replay
    cached GEMMs instead of recomputing kernel entries.

    Parameters
    ----------
    tile_rows:
        Row-tile height for the non-linear kernels; bounds peak memory at
        ``tile_rows * (m-1)`` kernel entries per matvec (per worker).
    solver_threads:
        Worker threads for the tile sweep; ``None`` resolves like an
        OpenMP runtime (``PLSSVM_NUM_THREADS`` / CPU count), ``1`` is
        serial.
    tile_cache_mb:
        Byte budget (MiB) of the tile cache; ``0`` disables it. Above the
        budget the cache switches itself off (see tile_pipeline docs).
    compute_dtype:
        Element type for kernel-tile evaluation and caching (mixed
        precision: ``float32`` tiles halve cache bytes and memory
        bandwidth while CG's vectors, reductions, and termination
        criterion stay in ``dtype``). ``None`` keeps tiles in ``dtype``.
        The linear kernel has no tiles and ignores it.
    """

    def __init__(
        self,
        X: np.ndarray,
        y: np.ndarray,
        param: Parameter,
        *,
        tile_rows: int = 1024,
        ridge: Optional[np.ndarray] = None,
        binary_labels: bool = True,
        solver_threads: Optional[int] = None,
        tile_cache_mb: Optional[float] = None,
        compute_dtype=None,
    ) -> None:
        super().__init__(X, y, param, ridge=ridge, binary_labels=binary_labels)
        if tile_rows <= 0:
            raise DataError("tile_rows must be positive")
        self.tile_rows = int(tile_rows)
        self._solver_threads = solver_threads
        self._tile_cache_mb = tile_cache_mb
        self.compute_dtype = compute_dtype
        self._pipeline = None

    @property
    def pipeline(self):
        """The lazily built tile pipeline (non-linear kernels only)."""
        if self.param.kernel is KernelType.LINEAR:
            return None
        if self._pipeline is None:
            from .tile_pipeline import DEFAULT_TILE_CACHE_MB, TilePipeline

            cache_mb = (
                DEFAULT_TILE_CACHE_MB
                if self._tile_cache_mb is None
                else self._tile_cache_mb
            )
            kw = self.param.kernel_kwargs()
            self._pipeline = TilePipeline(
                self.X_bar,
                self.param.kernel,
                gamma=kw.get("gamma"),
                degree=kw.get("degree", 3),
                coef0=kw.get("coef0", 0.0),
                tile_rows=self.tile_rows,
                num_threads=self._solver_threads,
                cache_mb=cache_mb,
                dtype=self.dtype,
                compute_dtype=self.compute_dtype,
            )
        return self._pipeline

    def _kernel_matvec(self, v: np.ndarray) -> np.ndarray:
        if self.param.kernel is KernelType.LINEAR:
            # K_bar @ v == X_bar @ (X_bar.T @ v): two GEMVs, O(m d).
            return self.X_bar @ (self.X_bar.T @ v)
        return self.pipeline.sweep(v)

    def _kernel_matvec_multi(self, V: np.ndarray) -> np.ndarray:
        if self.param.kernel is KernelType.LINEAR:
            # Two GEMMs instead of 2k GEMVs.
            return self.X_bar @ (self.X_bar.T @ V)
        return self.pipeline.sweep(V)


def reduced_rhs(y: np.ndarray) -> np.ndarray:
    """Right-hand side of the reduced system (Eq. 14)."""
    y = np.asarray(y).ravel()
    return y[:-1] - y[-1]


def build_reduced_system(
    X: np.ndarray,
    y: np.ndarray,
    param: Parameter,
    *,
    implicit: Optional[bool] = None,
    tile_rows: int = 1024,
    solver_threads: Optional[int] = None,
    tile_cache_mb: Optional[float] = None,
    compute_dtype=None,
    shard_rows: Optional[int] = None,
    shard_size: Optional[int] = None,
) -> Tuple[QMatrixBase, np.ndarray]:
    """Assemble ``(Q_tilde, rhs)`` for the given training data.

    ``implicit=None`` selects automatically: explicit assembly for up to
    :data:`EXPLICIT_LIMIT` points (a dense solve's memory is then harmless
    and matvecs are fastest), matrix-free beyond that — the same trade-off
    that forces the paper's GPU kernels to recompute entries on the fly.
    When an active memory budget (see :mod:`repro.membudget`) is too small
    for the dense system, the automatic mode also picks the matrix-free
    path. ``solver_threads`` / ``tile_cache_mb`` / ``compute_dtype``
    configure the implicit operator's tile pipeline (ignored for the
    explicit path).

    ``X`` may be a row source (:class:`repro.io.chunked.ChunkedDataset` /
    ``ArrayRowSource``) instead of an array; that, or a ``shard_rows`` /
    ``shard_size`` sharding request, routes to the out-of-core
    :class:`repro.core.rowsharded.RowShardedQMatrix`.
    """
    from ..io.chunked import is_row_source

    if is_row_source(X) or shard_rows is not None or shard_size is not None:
        from .rowsharded import RowShardedQMatrix

        q: QMatrixBase = RowShardedQMatrix(
            X,
            y,
            param,
            num_shards=shard_rows,
            shard_size=shard_size,
            tile_rows=tile_rows,
            solver_threads=solver_threads,
            tile_cache_mb=tile_cache_mb,
            compute_dtype=compute_dtype,
        )
        return q, q.rhs()
    if implicit is None:
        m = np.asarray(X).shape[0]
        implicit = m > EXPLICIT_LIMIT
        if not implicit:
            budget = active_memory_budget()
            dense_bytes = (m - 1) * (m - 1) * np.dtype(param.dtype).itemsize
            if budget is not None and dense_bytes > budget:
                implicit = True
    if implicit:
        q = ImplicitQMatrix(
            X,
            y,
            param,
            tile_rows=tile_rows,
            solver_threads=solver_threads,
            tile_cache_mb=tile_cache_mb,
            compute_dtype=compute_dtype,
        )
    else:
        q = ExplicitQMatrix(X, y, param)
    return q, q.rhs()


def recover_bias_and_alpha(
    qmat: QMatrixBase, alpha_bar: np.ndarray
) -> Tuple[np.ndarray, float]:
    """Recover the full multiplier vector and the bias from ``alpha_bar``.

    The eliminated multiplier follows from the equality constraint
    ``sum(alpha) = 0`` of Eq. 11, i.e. ``alpha_m = -sum(alpha_bar)``; the
    bias is Eq. 15: ``b = y_m + Q_mm * <1, alpha_bar> - <q_bar, alpha_bar>``.
    """
    alpha_bar = np.asarray(alpha_bar, dtype=qmat.dtype).ravel()
    if alpha_bar.shape[0] != qmat.shape[0]:
        raise DataError(
            f"alpha length {alpha_bar.shape[0]} does not match system size {qmat.shape[0]}"
        )
    s = float(alpha_bar.sum())
    bias = qmat.y_m + qmat.q_mm * s - float(qmat.q_bar @ alpha_bar)
    alpha = np.concatenate([alpha_bar, np.asarray([-s], dtype=qmat.dtype)])
    return alpha, bias
