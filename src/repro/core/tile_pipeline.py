"""Shared kernel-tile pipeline: compute each tile once, reuse it everywhere.

The implicit matvec of §III-B is the solver's hot loop: every CG iteration
re-evaluates the whole kernel matrix tile by tile. This module amortizes
that work along three axes (the multi-RHS batching of Tyree et al.,
*Parallel Support Vector Machines in Practice*, and the cache-centric
recipe of Glasmachers, *A Recipe for Fast Large-scale SVM Training*):

* **across right-hand sides** — :meth:`TilePipeline.sweep` accepts a whole
  matrix ``V`` of vectors, turning the per-tile GEMV into a GEMM, so block
  CG pays one tile sweep per iteration however many systems it carries;
* **across threads** — row tiles are independent, and the work inside each
  (a BLAS product plus vectorized transcendentals) releases the GIL, so
  tiles are fanned out over :class:`repro.parallel.ThreadPool` workers;
* **across iterations** — a byte-budgeted LRU :class:`TileCache` (modeled
  on :class:`repro.smo.kernel_cache.KernelCache`) keeps computed tiles, so
  every sweep after the first replays cached GEMMs instead of recomputing
  kernels. Caching defaults *off* above the byte budget: a sequential
  sweep over a working set larger than the cache evicts every tile before
  its reuse, so a too-small cache is pure overhead.

The radial kernel's ``||x||²`` row norms are precomputed once per pipeline
and sliced per tile (§III-C2's caching idea applied host-side) instead of
being recomputed for every tile of every sweep.

A ``compute_dtype`` knob adds mixed precision (Glasmachers' observation
that reduced-precision kernel storage is the cheapest way to double
effective cache capacity and bandwidth): tiles are evaluated and cached in
``float32`` while sweep results are accumulated back into the ``float64``
the solver's recursion and termination criterion run in.

All activity is reported through the active
:class:`repro.telemetry.TelemetryContext` (resolved per sweep in the
calling thread), so each fit's ``report_`` sees only its own sweeps while
the process-wide aggregate keeps benchmarks honest without plumbing.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import List, Optional, Tuple

import numpy as np

from ..exceptions import InvalidParameterError
from ..parallel.thread_pool import ThreadPool, shared_pool
from ..telemetry.context import current_context
from ..types import KernelType
from .kernels import kernel_matrix, squared_row_norms, validate_kernel_params

__all__ = ["TileCache", "TilePipeline", "DEFAULT_TILE_CACHE_MB"]

#: Default byte budget of the cross-iteration tile cache (in MiB). Chosen so
#: problems up to ~5800 points cache fully in float64; larger problems fall
#: back to recompute-per-sweep exactly like the paper's GPU kernels.
DEFAULT_TILE_CACHE_MB = 256.0


class TileCache:
    """Byte-budgeted LRU cache mapping tile index -> kernel tile.

    The SMO cache (:class:`repro.smo.kernel_cache.KernelCache`) budgets
    fixed-size rows; tiles vary in height (the last tile is usually
    ragged), so this variant tracks actual bytes. Eviction pops the
    least-recently-used tile until the new tile fits. A tile that is
    *alone* larger than the whole budget bypasses the cache entirely
    (counted in ``oversized``) — previously it was retained anyway and sat
    permanently over budget. ``nbytes <= capacity_bytes`` is an invariant.

    Thread-safe: pipeline workers probe and fill the cache concurrently.
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise InvalidParameterError("capacity_bytes must be positive")
        self.capacity_bytes = int(capacity_bytes)
        self._tiles: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.oversized = 0

    def get(self, key: int) -> Optional[np.ndarray]:
        """Return the cached tile or ``None``, counting the hit/miss."""
        with self._lock:
            tile = self._tiles.get(key)
            if tile is not None:
                self.hits += 1
                self._tiles.move_to_end(key)
                return tile
            self.misses += 1
            return None

    def put(self, key: int, tile: np.ndarray) -> Tuple[int, bool]:
        """Insert a tile, evicting LRU entries until it fits the budget.

        Returns ``(evicted_count, oversized)`` for the caller's per-call
        accounting: how many tiles this insertion evicted, and whether the
        tile bypassed the cache because it alone exceeds the budget.
        """
        with self._lock:
            if tile.nbytes > self.capacity_bytes:
                # Caching it would pin the cache over budget forever (it can
                # never be evicted down past itself); skip it instead.
                self.oversized += 1
                return 0, True
            if key in self._tiles:
                self._tiles.move_to_end(key)
                return 0, False
            self._tiles[key] = tile
            self._bytes += tile.nbytes
            evicted_count = 0
            while self._bytes > self.capacity_bytes:
                _, evicted = self._tiles.popitem(last=False)
                self._bytes -= evicted.nbytes
                self.evictions += 1
                evicted_count += 1
            return evicted_count, False

    def __contains__(self, key: int) -> bool:
        with self._lock:
            return key in self._tiles

    def __len__(self) -> int:
        with self._lock:
            return len(self._tiles)

    @property
    def nbytes(self) -> int:
        with self._lock:
            return self._bytes

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        with self._lock:
            self._tiles.clear()
            self._bytes = 0
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.oversized = 0


class _SweepStats:
    """Per-sweep cache/compute tallies, accumulated locally by the workers.

    Concurrent sweeps used to reconstruct their deltas from before/after
    snapshots of the shared cache counters — two interleaved sweeps then
    double- or under-counted the flushed deltas. Counting each sweep's own
    events in an object private to the sweep makes the flush into the
    active telemetry context exact regardless of interleaving.
    """

    __slots__ = ("lock", "hits", "misses", "evictions", "oversized", "computed")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.oversized = 0
        self.computed = 0


class TilePipeline:
    """Threaded, cached evaluation of ``K @ V`` over fixed kernel rows.

    One pipeline is bound to one row/column point set (the solver's
    ``X_bar``) and lives as long as its Q-matrix operator, i.e. across all
    CG iterations of a solve — that persistence is what makes the norm
    precomputation and the tile cache pay off.

    Parameters
    ----------
    points:
        The point set; the pipeline evaluates ``K[i, j] = k(p_i, p_j)``.
    kernel, gamma, degree, coef0:
        Kernel selection and coefficients (gamma must already be resolved).
    tile_rows:
        Row-tile height; bounds uncached peak memory at
        ``tile_rows * len(points)`` entries per worker.
    pool:
        A ready-made :class:`ThreadPool` to run tiles on (the OpenMP
        backend shares its pool); mutually exclusive with ``num_threads``.
    num_threads:
        Worker count for a pipeline-owned pool; ``None`` resolves like an
        OpenMP runtime (``PLSSVM_NUM_THREADS`` / CPU count).
    cache_mb:
        Byte budget (MiB) of the cross-iteration tile cache. ``0`` disables
        caching. When the full tile working set exceeds the budget the
        cache also stays off (see module docstring) unless
        ``force_cache=True`` opts into partial LRU caching anyway.
    dtype:
        Element type of the sweep *results* (the CG working precision).
    compute_dtype:
        Element type tiles are evaluated and cached in. ``float32`` tiles
        halve the cache's bytes per tile — roughly doubling the problem
        size that still caches fully within the budget — and halve the
        GEMM bandwidth, while sweep results are still accumulated into
        ``dtype`` so the solver's recursion, reductions, and termination
        test keep their precision. ``None`` keeps tiles in ``dtype``.
    """

    def __init__(
        self,
        points: np.ndarray,
        kernel: KernelType,
        *,
        gamma: Optional[float] = None,
        degree: int = 3,
        coef0: float = 0.0,
        tile_rows: int = 1024,
        pool: Optional[ThreadPool] = None,
        num_threads: Optional[int] = None,
        cache_mb: float = DEFAULT_TILE_CACHE_MB,
        force_cache: bool = False,
        dtype=np.float64,
        compute_dtype=None,
    ) -> None:
        if tile_rows <= 0:
            raise InvalidParameterError("tile_rows must be positive")
        if cache_mb < 0:
            raise InvalidParameterError("cache_mb must be non-negative")
        if pool is not None and num_threads is not None:
            raise InvalidParameterError("pass either pool or num_threads, not both")
        self.kernel = KernelType.from_name(kernel)
        validate_kernel_params(self.kernel, gamma, degree, coef0)
        self.points = np.ascontiguousarray(points, dtype=dtype)
        if self.points.ndim != 2:
            raise InvalidParameterError("points must be a 2-D array")
        self.gamma = gamma
        self.degree = degree
        self.coef0 = coef0
        self.tile_rows = int(tile_rows)
        self.dtype = np.dtype(dtype)
        self.compute_dtype = (
            self.dtype if compute_dtype is None else np.dtype(compute_dtype)
        )
        if self.compute_dtype.kind != "f":
            raise InvalidParameterError(
                f"compute_dtype must be a floating dtype, got {self.compute_dtype}"
            )
        # Tile evaluation runs entirely in compute_dtype: casting the points
        # once here keeps every per-tile GEMM and transcendental in the
        # reduced precision instead of paying a downcast per tile per sweep.
        self._points_c = (
            self.points
            if self.compute_dtype == self.dtype
            else np.ascontiguousarray(self.points, dtype=self.compute_dtype)
        )
        n = self.points.shape[0]
        self.tiles: List[Tuple[int, int]] = [
            (start, min(start + self.tile_rows, n))
            for start in range(0, n, self.tile_rows)
        ]
        # Reusable RBF row norms: computed once, sliced per tile per sweep.
        self.row_norms: Optional[np.ndarray] = (
            squared_row_norms(self._points_c) if self.kernel is KernelType.RBF else None
        )
        # Attach to the module-wide shared pool rather than spawning one per
        # operator: pipelines are created per fit, worker threads are not.
        self.pool = pool if pool is not None else shared_pool(num_threads)
        capacity = int(cache_mb * 1024 * 1024)
        working_set = n * n * self.compute_dtype.itemsize
        self.cache: Optional[TileCache] = None
        if capacity > 0 and (working_set <= capacity or force_cache):
            self.cache = TileCache(capacity)
        # Instance counters (the global profiling counters aggregate these).
        self.sweeps = 0
        self.tiles_computed = 0
        self._count_lock = threading.Lock()

    @property
    def num_tiles(self) -> int:
        return len(self.tiles)

    @property
    def cache_enabled(self) -> bool:
        return self.cache is not None

    def _compute_tile(self, start: int, stop: int) -> np.ndarray:
        tile = kernel_matrix(
            self._points_c[start:stop],
            self._points_c,
            self.kernel,
            gamma=self.gamma,
            degree=self.degree,
            coef0=self.coef0,
            a_sq=None if self.row_norms is None else self.row_norms[start:stop],
            b_sq=self.row_norms,
        )
        return tile.astype(self.compute_dtype, copy=False)

    def tile(self, index: int, _stats: Optional[_SweepStats] = None) -> np.ndarray:
        """Fetch tile ``index``, via the cache when enabled."""
        start, stop = self.tiles[index]
        if self.cache is not None:
            cached = self.cache.get(index)
            if cached is not None:
                if _stats is not None:
                    with _stats.lock:
                        _stats.hits += 1
                return cached
            if _stats is not None:
                with _stats.lock:
                    _stats.misses += 1
        tile = self._compute_tile(start, stop)
        with self._count_lock:
            self.tiles_computed += 1
        if _stats is not None:
            with _stats.lock:
                _stats.computed += 1
        if self.cache is not None:
            evicted, oversized = self.cache.put(index, tile)
            if _stats is not None:
                with _stats.lock:
                    _stats.evictions += evicted
                    _stats.oversized += int(oversized)
        return tile

    def sweep(self, V: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Compute ``K @ V`` with one pass over the tiles.

        ``V`` may be a vector ``(n,)`` or a block of right-hand sides
        ``(n, k)``; the sweep cost is one tile evaluation pass either way —
        that invariant is what block CG banks on.

        ``out``, when given, must be a NumPy array with the result's exact
        shape (``(n,)`` for a vector ``V``, ``(n, k)`` for a block) and the
        pipeline's ``dtype``; the sweep writes into it and returns it.
        """
        V = np.asarray(V, dtype=self.dtype)
        squeeze = V.ndim == 1
        V2 = V[:, None] if squeeze else V
        n = self.points.shape[0]
        if V2.ndim != 2 or V2.shape[0] != n:
            raise InvalidParameterError(
                f"operand of shape {V.shape} does not match {n} pipeline rows"
            )
        # Mixed precision: the per-tile GEMM runs in compute_dtype, the
        # result is upcast on assignment into the dtype-precision output,
        # so everything downstream of the sweep stays full precision.
        V2 = np.ascontiguousarray(V2, dtype=self.compute_dtype)
        k = V2.shape[1]
        if out is None:
            out2 = np.empty((n, k), dtype=self.dtype)
            result = out2[:, 0] if squeeze else out2
        else:
            # Validate up front: the workers assign 2-D tile products into
            # slices of this buffer, and a shape/dtype mismatch would
            # otherwise surface as an opaque broadcast error inside the pool.
            expected = (n,) if squeeze else (n, k)
            if not isinstance(out, np.ndarray) or out.shape != expected:
                got = out.shape if isinstance(out, np.ndarray) else type(out).__name__
                raise InvalidParameterError(
                    f"out must be a numpy array of shape {expected} to receive "
                    f"K @ V, got {got}"
                )
            if out.dtype != self.dtype:
                raise InvalidParameterError(
                    f"out must have dtype {self.dtype}, got {out.dtype}"
                )
            # A (n,) out gets a 2-D write-through view so the tile products
            # assign without broadcasting surprises.
            out2 = out[:, None] if squeeze else out
            result = out

        stats = _SweepStats()

        def run(index: int) -> None:
            start, stop = self.tiles[index]
            out2[start:stop] = self.tile(index, _stats=stats) @ V2

        # Resolved in the *calling* thread — the worker pool is shared
        # across fits, so only the sweep caller knows which fit this is.
        ctx = current_context()
        with ctx.span("tile_sweep", tiles=self.num_tiles, columns=k) as span:
            self.pool.map_tasks(run, range(self.num_tiles))
        self.sweeps += 1

        ctx.inc("tile_sweeps")
        ctx.inc("tiles_computed", stats.computed)
        if self.cache is not None:
            ctx.inc("cache_hits", stats.hits)
            ctx.inc("cache_misses", stats.misses)
            ctx.inc("cache_evictions", stats.evictions)
            ctx.inc("cache_oversized", stats.oversized)
        if span is not None:
            ctx.observe("sweep_seconds", span.dur)
        return result

    def cross_sweep(
        self,
        Q: np.ndarray,
        V: np.ndarray,
        out: Optional[np.ndarray] = None,
        *,
        tile_rows: Optional[int] = None,
    ) -> np.ndarray:
        """Compute ``K(Q, points) @ V`` for a block of *query* rows ``Q``.

        This is the serving-side counterpart of :meth:`sweep`: the column
        side is still the pipeline's fixed point set (a model's support
        vectors), but the rows are novel test points, so the tile cache
        does not apply. What the warm pipeline still contributes is the
        precomputed support-vector row norms (the ``b_sq`` half of the RBF
        distance expansion), the points already cast to ``compute_dtype``,
        and the shared worker pool — which is exactly the per-request work
        a cold path would redo.

        ``V`` may be a vector ``(n,)`` (one model's alphas) or a block
        ``(n, k)`` (stacked alphas of k machines sharing the support set);
        either way the cost is one pass over the query tiles. Results are
        accumulated into the pipeline ``dtype``.
        """
        Q = np.asarray(Q)
        if Q.ndim == 1:
            Q = Q[None, :]
        if Q.ndim != 2 or Q.shape[1] != self.points.shape[1]:
            raise InvalidParameterError(
                f"query block of shape {Q.shape} does not match "
                f"{self.points.shape[1]} pipeline features"
            )
        n = self.points.shape[0]
        V = np.asarray(V, dtype=self.dtype)
        squeeze = V.ndim == 1
        V2 = V[:, None] if squeeze else V
        if V2.ndim != 2 or V2.shape[0] != n:
            raise InvalidParameterError(
                f"operand of shape {V.shape} does not match {n} pipeline rows"
            )
        Qc = np.ascontiguousarray(Q, dtype=self.compute_dtype)
        Vc = np.ascontiguousarray(V2, dtype=self.compute_dtype)
        q, k = Qc.shape[0], Vc.shape[1]
        expected = (q,) if squeeze else (q, k)
        if out is None:
            out2 = np.empty((q, k), dtype=self.dtype)
            result = out2[:, 0] if squeeze else out2
        else:
            if not isinstance(out, np.ndarray) or out.shape != expected:
                got = out.shape if isinstance(out, np.ndarray) else type(out).__name__
                raise InvalidParameterError(
                    f"out must be a numpy array of shape {expected} to receive "
                    f"K(Q, points) @ V, got {got}"
                )
            if out.dtype != self.dtype:
                raise InvalidParameterError(
                    f"out must have dtype {self.dtype}, got {out.dtype}"
                )
            out2 = out[:, None] if squeeze else out
            result = out

        rows = int(tile_rows) if tile_rows is not None else self.tile_rows
        if rows <= 0:
            raise InvalidParameterError("tile_rows must be positive")
        # Query-side norms for the RBF expansion; the support-side norms
        # are the pipeline's precomputed ones.
        q_norms = (
            squared_row_norms(Qc) if self.kernel is KernelType.RBF else None
        )
        spans = [(start, min(start + rows, q)) for start in range(0, q, rows)]

        def run(span_idx: int) -> None:
            start, stop = spans[span_idx]
            tile = kernel_matrix(
                Qc[start:stop],
                self._points_c,
                self.kernel,
                gamma=self.gamma,
                degree=self.degree,
                coef0=self.coef0,
                a_sq=None if q_norms is None else q_norms[start:stop],
                b_sq=self.row_norms,
            )
            out2[start:stop] = tile.astype(self.compute_dtype, copy=False) @ Vc

        ctx = current_context()
        with ctx.span("tile_sweep", tiles=len(spans), columns=k, rows=q, cross=True) as span:
            if len(spans) == 1:
                # A micro-batch is usually one tile; skip the pool hand-off.
                run(0)
            else:
                self.pool.map_tasks(run, range(len(spans)))
        self.sweeps += 1
        with self._count_lock:
            self.tiles_computed += len(spans)
        ctx.inc("tile_sweeps")
        ctx.inc("tiles_computed", len(spans))
        if span is not None:
            ctx.observe("sweep_seconds", span.dur)
        return result

    def stats(self) -> dict:
        """Per-pipeline counters (scoped ones live on the telemetry context)."""
        out = {
            "sweeps": self.sweeps,
            "tiles_computed": self.tiles_computed,
            "num_tiles": self.num_tiles,
            "cache_enabled": self.cache_enabled,
            "compute_dtype": self.compute_dtype.name,
        }
        if self.cache is not None:
            out.update(
                cache_hits=self.cache.hits,
                cache_misses=self.cache.misses,
                cache_evictions=self.cache.evictions,
                cache_oversized=self.cache.oversized,
                cache_hit_rate=self.cache.hit_rate,
                cache_bytes=self.cache.nbytes,
            )
        return out
