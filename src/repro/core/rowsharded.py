"""Sample-sharded, out-of-core realization of the reduced LS-SVM system.

The feature-wise multi-GPU split (paper §III) caps ``m`` by host RAM because
every operator holds dense ``X``. Following *Parallel Support Vector
Machines in Practice* (Tyree et al.), :class:`RowShardedQMatrix` partitions
the *samples* instead: shard ``J`` owns its row block ``X_J`` and the
matching slice ``v_J`` of the CG vector, computes a full-length partial
product, and the partials are combined with the deterministic allreduce in
:mod:`repro.parallel.reduction`:

* linear kernel — the Gram factorization ``K_bar @ v = X_bar (X_bar^T v)``
  splits into per-shard feature-space partials ``w_J = X_J^T v_J`` (a true
  ``d``-length allreduce, exactly the ``MultiNodeQMatrix`` communication
  pattern) followed by a second streamed pass ``out_B = X_B @ w``;
* non-linear kernels — shard ``J`` streams *all* row blocks against its
  columns, accumulating ``p_J[I] += K(X_I, X_J') @ v_J'`` tile by tile;
  ``out = allreduce_sum(p_J)``. Tiles reuse the pipeline's kernel math
  (``kernel_matrix`` with precomputed RBF row norms) and the byte-budgeted
  :class:`repro.core.tile_pipeline.TileCache`.

Data arrives through the row-block protocol (``iter_blocks`` /
``row_block`` / ``gather_rows``), so the operator works identically over an
in-memory array (:class:`repro.io.chunked.ArrayRowSource`) and an
out-of-core :class:`repro.io.chunked.ChunkedDataset` — peak memory is a few
row blocks plus O(m) vectors, never ``m × d``. Partial results are folded
through :func:`repro.parallel.reduction.sum_partials` in bounded groups so
the combine step also respects the byte budget.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..exceptions import DataError, InvalidParameterError
from ..io.chunked import as_row_source
from ..membudget import active_memory_budget
from ..parallel.partition import BlockRange, chunk_ranges
from ..parallel.reduction import sum_partials
from ..parallel.thread_pool import shared_pool
from ..parameter import Parameter
from ..telemetry.context import current_context
from ..types import KernelType
from .kernels import kernel_matrix, kernel_row, kernel_scalar, squared_row_norms
from .qmatrix import DEFAULT_ROW_BLOCK, QMatrixBase
from .tile_pipeline import DEFAULT_TILE_CACHE_MB, TileCache, _SweepStats

__all__ = ["RowShardedQMatrix"]

#: Fold partial outputs through the allreduce once this many accumulate,
#: bounding the combine step's memory at ``_FOLD_PARTIALS`` full vectors.
_FOLD_PARTIALS = 8


class RowShardedQMatrix(QMatrixBase):
    """Matrix-free ``Q_tilde`` over row-sharded (possibly on-disk) data.

    Parameters
    ----------
    data:
        A row source (``ChunkedDataset`` / ``ArrayRowSource``) or a dense
        array, holding all ``m`` training points.
    num_shards:
        Number of row shards (simulated nodes). Mutually exclusive with
        ``shard_size``; the default derives one shard per source block.
    shard_size:
        Fixed shard height in rows (the last shard may be ragged).
    tile_rows:
        Height/width bound of the kernel tiles streamed by the non-linear
        path; one tile holds at most ``tile_rows**2`` entries.
    tile_cache_mb:
        Byte budget (MiB) of the kernel-tile cache; like ``TilePipeline``
        the cache switches itself off when the full working set cannot
        fit (always the case at out-of-core scale).
    compute_dtype:
        Mixed-precision tile evaluation, as in ``ImplicitQMatrix``.
    """

    def __init__(
        self,
        data,
        y: np.ndarray,
        param: Parameter,
        *,
        num_shards: Optional[int] = None,
        shard_size: Optional[int] = None,
        ridge: Optional[np.ndarray] = None,
        binary_labels: bool = True,
        tile_rows: int = 1024,
        solver_threads: Optional[int] = None,
        tile_cache_mb: Optional[float] = None,
        compute_dtype=None,
    ) -> None:
        source = as_row_source(data)
        m = int(source.num_rows)
        d = int(source.num_features)
        if m < 2:
            raise DataError("LS-SVM training requires at least two data points")
        if d < 1:
            raise DataError("training data has no features")
        param = param.with_gamma_for(d)
        y = np.asarray(y, dtype=param.dtype).ravel()
        if y.shape[0] != m:
            raise DataError(
                f"number of points ({m}) and labels ({y.shape[0]}) differ"
            )
        if binary_labels:
            labels = np.unique(y)
            if not np.all(np.isin(labels, (-1.0, 1.0))):
                raise DataError(f"labels must be -1/+1, got {labels[:8]}")
            if labels.size < 2:
                raise DataError("training data contains only a single class")
        elif not np.all(np.isfinite(y)):
            raise DataError("regression targets contain NaN or infinite values")

        self.source = source
        self._block_rows = int(getattr(source, "block_rows", DEFAULT_ROW_BLOCK))
        self.tile_rows = int(tile_rows)
        if self.tile_rows <= 0:
            raise DataError("tile_rows must be positive")

        n = m - 1
        self.x_m = np.asarray(source.row(m - 1), dtype=param.dtype)
        if not np.all(np.isfinite(self.x_m)):
            raise DataError("training data contains NaN or infinite values")
        kw = param.kernel_kwargs()
        is_rbf = param.kernel is KernelType.RBF
        q_bar = np.empty(n, dtype=param.dtype)
        self._row_norms = np.empty(n, dtype=np.float64) if is_rbf else None
        # One streaming pass: q_bar, RBF row norms, and finiteness checks.
        for start, stop, block in source.iter_blocks(stop=n):
            block = np.asarray(block, dtype=param.dtype)
            if not np.all(np.isfinite(block)):
                raise DataError("training data contains NaN or infinite values")
            q_bar[start:stop] = kernel_row(self.x_m, block, param.kernel, **kw)
            if is_rbf:
                self._row_norms[start:stop] = squared_row_norms(block)
        k_mm = kernel_scalar(self.x_m, self.x_m, param.kernel, **kw)
        self._finish_init(y, param, q_bar, k_mm, ridge=ridge)

        self.shards = self._resolve_shards(n, num_shards, shard_size)
        self.compute_dtype = (
            np.dtype(compute_dtype) if compute_dtype is not None else self.dtype
        )
        cache_mb = DEFAULT_TILE_CACHE_MB if tile_cache_mb is None else tile_cache_mb
        capacity = int(float(cache_mb) * 1024 * 1024)
        budget = active_memory_budget()
        if budget is not None and tile_cache_mb is None:
            # Under a budget the default cache must not become the thing
            # that blows it: leave most of the budget to the streaming
            # blocks and solver vectors.
            capacity = min(capacity, budget // 4)
        working_set = n * n * self.compute_dtype.itemsize
        use_cache = (
            param.kernel is not KernelType.LINEAR
            and capacity > 0
            and working_set <= capacity
        )
        self.cache = TileCache(capacity) if use_cache else None
        self.pool = shared_pool(solver_threads)
        # Row-tile grid of the streamed kernel path (aligned to tile_rows).
        self._row_tiles: List[Tuple[int, int]] = [
            (s, min(s + self.tile_rows, n)) for s in range(0, n, self.tile_rows)
        ]

    @staticmethod
    def _resolve_shards(
        n: int, num_shards: Optional[int], shard_size: Optional[int]
    ) -> List[BlockRange]:
        if num_shards is not None and shard_size is not None:
            raise InvalidParameterError(
                "num_shards and shard_size are mutually exclusive"
            )
        if num_shards is not None:
            num_shards = int(num_shards)
            if num_shards < 1:
                raise InvalidParameterError(
                    f"num_shards must be >= 1, got {num_shards}"
                )
            return [r for r in chunk_ranges(n, num_shards) if len(r) > 0]
        if shard_size is None:
            shard_size = DEFAULT_ROW_BLOCK
        shard_size = int(shard_size)
        if shard_size < 1:
            raise InvalidParameterError(
                f"shard_size must be >= 1, got {shard_size}"
            )
        return [
            BlockRange(s, min(s + shard_size, n)) for s in range(0, n, shard_size)
        ]

    # -- dense views (lazy; only touched post-fit) -------------------------

    @property
    def X(self) -> np.ndarray:
        """All ``m`` training points as a lazy array (memmap for on-disk data).

        Training never reads this; it backs the fitted model's support
        vectors so prediction works after an out-of-core fit.
        """
        return self.source.as_array()

    @property
    def X_bar(self) -> np.ndarray:
        return self.X[:-1]

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    # -- row-block protocol ------------------------------------------------

    def iter_row_blocks(self, block_rows: Optional[int] = None):
        n = self.shape[0]
        for start, stop, block in self.source.iter_blocks(block_rows, stop=n):
            yield start, stop, np.asarray(block, dtype=self.dtype)

    def gather_rows(self, indices) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.intp)
        if indices.size and int(indices.max(initial=0)) >= self.shape[0]:
            raise DataError(
                f"row index {int(indices.max())} out of range for the "
                f"{self.shape[0]} reduced-system rows"
            )
        return np.asarray(self.source.gather_rows(indices), dtype=self.dtype)

    def _iter_range_blocks(self, start: int, stop: int, step: Optional[int] = None):
        """Stream ``[start, stop)`` in dtype-cast blocks of ``step`` rows."""
        step = step or self._block_rows
        for b in range(start, stop, step):
            e = min(b + step, stop)
            yield b, e, np.asarray(self.source.row_block(b, e), dtype=self.dtype)

    # -- matvec ------------------------------------------------------------

    def _kernel_matvec(self, v: np.ndarray) -> np.ndarray:
        return self._sweep(v[:, None])[:, 0]

    def _kernel_matvec_multi(self, V: np.ndarray) -> np.ndarray:
        return self._sweep(V)

    def _sweep(self, V: np.ndarray) -> np.ndarray:
        """``K_bar @ V`` via per-shard partials + deterministic allreduce."""
        ctx = current_context()
        stats = _SweepStats()
        with ctx.span(
            "row_shard_sweep", shards=self.num_shards, columns=V.shape[1]
        ) as span:
            if self.param.kernel is KernelType.LINEAR:
                out = self._sweep_linear(V)
            else:
                out = self._sweep_kernel(V, stats)
        ctx.inc("tile_sweeps")
        ctx.inc("tiles_computed", stats.computed)
        if self.cache is not None:
            ctx.inc("cache_hits", stats.hits)
            ctx.inc("cache_misses", stats.misses)
            ctx.inc("cache_evictions", stats.evictions)
            ctx.inc("cache_oversized", stats.oversized)
        if span is not None:
            ctx.observe("sweep_seconds", span.dur)
        return out

    def _sweep_linear(self, V: np.ndarray) -> np.ndarray:
        """Gram-factored linear matvec: shard-local ``X_J^T v_J`` + allreduce.

        Phase 1 streams each shard once for its feature-space partial
        (``d × k``, the only inter-shard communication), phase 2 streams
        again for the disjoint output rows ``out_B = X_B @ w``.
        """
        n = self.shape[0]
        d = int(self.source.num_features)
        partials = []
        for shard in self.shards:
            # The in-shard fold is node-local work: accumulate in block
            # order (deterministic) and save the allreduce machinery for
            # the one true inter-shard combine below.
            local = np.zeros((d, V.shape[1]), dtype=self.dtype)
            for bstart, bstop, block in self._iter_range_blocks(
                shard.start, shard.stop
            ):
                local += block.T @ V[bstart:bstop]
            partials.append(local)
        w = sum_partials(partials)
        out = np.empty((n, V.shape[1]), dtype=self.dtype)
        for shard in self.shards:
            for bstart, bstop, block in self._iter_range_blocks(
                shard.start, shard.stop
            ):
                out[bstart:bstop] = block @ w
        return out

    def _tile(
        self,
        rstart: int,
        rstop: int,
        cstart: int,
        cstop: int,
        rows: np.ndarray,
        cols: np.ndarray,
        stats: _SweepStats,
    ) -> np.ndarray:
        """Kernel tile ``K(X[rstart:rstop], X[cstart:cstop])`` via the cache."""
        key = (rstart, cstart)
        if self.cache is not None:
            cached = self.cache.get(key)
            if cached is not None:
                with stats.lock:
                    stats.hits += 1
                return cached
            with stats.lock:
                stats.misses += 1
        kw = self.param.kernel_kwargs()
        tile = kernel_matrix(
            rows,
            cols,
            self.param.kernel,
            gamma=kw.get("gamma"),
            degree=kw.get("degree", 3),
            coef0=kw.get("coef0", 0.0),
            a_sq=None if self._row_norms is None else self._row_norms[rstart:rstop],
            b_sq=None if self._row_norms is None else self._row_norms[cstart:cstop],
        ).astype(self.compute_dtype, copy=False)
        with stats.lock:
            stats.computed += 1
        if self.cache is not None:
            evicted, oversized = self.cache.put(key, tile)
            with stats.lock:
                stats.evictions += evicted
                stats.oversized += int(oversized)
        return tile

    def _sweep_kernel(self, V: np.ndarray, stats: _SweepStats) -> np.ndarray:
        """Streamed non-linear matvec (Tyree row-partitioned scheme).

        Shard ``J`` holds ``V[J]`` and accumulates a full-length partial by
        streaming every row tile against its column tiles; the per-shard
        partials genuinely overlap and are combined with the allreduce,
        folded in bounded groups so at most :data:`_FOLD_PARTIALS` full
        vectors are ever alive.
        """
        n = self.shape[0]
        k = V.shape[1]
        cd = self.compute_dtype
        Vc = np.ascontiguousarray(V, dtype=cd)
        partials: List[np.ndarray] = []
        for shard in self.shards:
            p = np.zeros((n, k), dtype=self.dtype)
            for cstart, cstop, cols in self._iter_range_blocks(
                shard.start, shard.stop, step=self.tile_rows
            ):
                cols_c = np.ascontiguousarray(cols, dtype=cd)
                v_block = Vc[cstart:cstop]

                def run(tile_idx: int) -> None:
                    rstart, rstop = self._row_tiles[tile_idx]
                    rows = np.asarray(
                        self.source.row_block(rstart, rstop), dtype=cd
                    )
                    tile = self._tile(
                        rstart, rstop, cstart, cstop, rows, cols_c, stats
                    )
                    # Row tiles are disjoint in p, so workers don't race.
                    p[rstart:rstop] += tile @ v_block

                self.pool.map_tasks(run, range(len(self._row_tiles)))
            partials.append(p)
            if len(partials) >= _FOLD_PARTIALS:
                partials = [sum_partials(partials)]
        return sum_partials(partials)
