"""Incremental LS-SVM training: appended chunks, warm-started CG.

Every from-scratch fit pays two bills: assembling the reduced system
(O(m² d) kernel evaluations) and iterating CG to convergence from the
zero vector. When training data *grows* rather than changes, both are
mostly wasted — the old kernel block is unchanged and the old solution
is an excellent initial guess (Glasmachers, *A Recipe for Fast
Large-scale SVM Training*: warm start + polish is the cheap path to a
refreshed model).

:class:`IncrementalEngine` keeps the bill proportional to the chunk:

* **Bounded recompute.** The engine maintains the *corrected* dense
  reduced system Q_tilde (Eq. 16) in place across updates, inside a
  geometrically grown capacity buffer. Appending ``k`` rows computes
  only the ``O(m k)`` new kernel entries (one cross block and one
  corner block); the old block is fixed up without touching the kernel
  at all, because moving the eliminated point from ``x_m`` to
  ``x_{m+k}`` shifts every old entry by the rank-two correction
  ``D += a 1^T + 1 a^T + c`` with ``a_i = q_bar_old_i - q_bar_new_i``
  and ``c = q_mm_new - q_mm_old`` — two in-place broadcast passes, no
  O(m²) rebuild, no second Gram copy. Past ``explicit_limit`` rows (or
  a memory budget too small for the buffer) the engine drops to the
  matrix-free operator, where the savings come from the warm start
  alone.
* **Warm-started CG.** The reduced system of Chu et al. eliminates the
  *last* training point, so appending rows moves the eliminated point:
  the previous full multiplier vector (length ``m``, including the
  recovered ``alpha_m = -sum(alpha_bar)``) maps verbatim onto the first
  ``m`` entries of the new ``(m + k - 1)``-dimensional unknown. The
  ``k - 1`` genuinely new entries are then initialized by one block
  Gauss–Seidel sweep — an exact ``(k-1) x (k-1)`` solve of the new
  coordinates given the old ones, ``O(m k + k³)`` — which removes the
  bulk of the initial residual (it is concentrated in the new rows).
  CG only polishes the coupling back into the old coordinates —
  typically a handful of iterations instead of a full solve.
* **Preconditioner reuse.** The randomized Nyström preconditioner's
  expensive part is the RPCholesky pivot *search*. When the appended
  chunk is small relative to the support set and the corrected-kernel
  diagonal has not shifted, the engine keeps the previous pivot set and
  calls :func:`~repro.core.precond.refresh_nystrom` — O(m r) pivot
  columns instead of a fresh randomized factorization.

The engine is estimator-agnostic: targets may be a vector (binary
classification, regression) or an ``(m, c)`` block (one-vs-all
multiclass, solved by warm-started *block* CG in one operator sweep per
iteration). ``LSSVC.partial_fit`` / ``LSSVR.partial_fit`` /
``OneVsAllLSSVC.partial_fit`` wrap it with label handling, telemetry,
and model mutation.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Union

import numpy as np

try:  # SciPy ships in the standard toolchain but stays a soft dependency:
    # without it the engine falls back to the maintained-dense path below.
    from scipy.linalg import cholesky as _sla_cholesky
    from scipy.linalg import get_blas_funcs as _get_blas_funcs
except ImportError:  # pragma: no cover - exercised only on minimal installs
    _sla_cholesky = None
    _get_blas_funcs = None


def _load_lda_trsm():
    """ctypes handles to the Fortran ``?trsm`` routines, keyed by dtype.

    The f2py-generated wrappers behind ``get_blas_funcs`` insist on
    Fortran-*contiguous* operands and silently copy the whole O(n²)
    factor otherwise, which forbids solving against the leading sub-block
    of a capacity buffer (its column stride is the buffer's, not the
    block's). The raw Fortran routines take an explicit leading
    dimension, so calling them through SciPy's ``cython_blas`` PyCapsule
    pointers keeps every solve zero-copy. LP64 (32-bit BLAS int) builds
    only — the capsule signature is checked, and a padded-view self-test
    below disables the path on any mismatch.
    """
    try:
        import ctypes

        from scipy.linalg import cython_blas
    except ImportError:  # pragma: no cover - minimal installs
        return {}
    get_name = ctypes.pythonapi.PyCapsule_GetName
    get_name.restype = ctypes.c_char_p
    get_name.argtypes = [ctypes.py_object]
    get_ptr = ctypes.pythonapi.PyCapsule_GetPointer
    get_ptr.restype = ctypes.c_void_p
    get_ptr.argtypes = [ctypes.py_object, ctypes.c_char_p]
    c_int_p = ctypes.POINTER(ctypes.c_int)

    handles = {}
    for name, scalar, dtype in (
        ("dtrsm", ctypes.c_double, np.float64),
        ("strsm", ctypes.c_float, np.float32),
    ):
        capsule = cython_blas.__pyx_capi__.get(name)
        if capsule is None:
            continue
        signature = get_name(capsule)
        if signature is None or b"int" not in signature:
            continue
        proto = ctypes.CFUNCTYPE(
            None,
            ctypes.c_char_p,  # side
            ctypes.c_char_p,  # uplo
            ctypes.c_char_p,  # transa
            ctypes.c_char_p,  # diag
            c_int_p,  # m
            c_int_p,  # n
            ctypes.POINTER(scalar),  # alpha
            ctypes.POINTER(scalar),  # a
            c_int_p,  # lda
            ctypes.POINTER(scalar),  # b
            c_int_p,  # ldb
        )
        fn = proto(get_ptr(capsule, signature))

        def call(L, B, trans, *, _fn=fn, _scalar=scalar, _ctypes=ctypes):
            m, c = B.shape
            itemsize = L.dtype.itemsize
            # A size-1 trailing dimension may carry an arbitrary stride
            # under NumPy's relaxed-strides rules; BLAS wants ld >= m.
            lda = max(L.strides[1] // itemsize, m)
            ldb = max(B.strides[1] // itemsize, m)
            _fn(
                b"L",
                b"L",
                b"T" if trans else b"N",
                b"N",
                _ctypes.byref(_ctypes.c_int(m)),
                _ctypes.byref(_ctypes.c_int(c)),
                _ctypes.byref(_scalar(1.0)),
                L.ctypes.data_as(_ctypes.POINTER(_scalar)),
                _ctypes.byref(_ctypes.c_int(lda)),
                B.ctypes.data_as(_ctypes.POINTER(_scalar)),
                _ctypes.byref(_ctypes.c_int(ldb)),
            )
            return B

        handles[np.dtype(dtype)] = call

    # Self-test against a padded view (lda > n) before trusting the ABI.
    for dtype, call in list(handles.items()):
        try:
            buf = np.zeros((5, 5), dtype=dtype, order="F")
            n = 3
            buf[:n, :n] = np.tril(np.arange(1.0, 10.0).reshape(n, n)) + np.eye(n)
            L = buf[:n, :n]
            rhs = np.arange(1.0, 7.0).reshape(n, 2)
            B = np.asfortranarray(rhs.astype(dtype))
            call(L, B, 0)
            expect = np.linalg.solve(L.astype(np.float64), rhs)
            if not np.allclose(B.astype(np.float64), expect, atol=1e-4):
                raise AssertionError
        except Exception:  # pragma: no cover - foreign-ABI guard
            del handles[dtype]
    return handles


_LDA_TRSM = _load_lda_trsm()


def _trsm(L: np.ndarray, B: np.ndarray, *, trans: int) -> np.ndarray:
    """``L^{-1} B`` (``trans=0``) or ``L^{-T} B`` (``trans=1``), lower ``L``.

    ``L`` may be the leading sub-block view of a Fortran-ordered capacity
    buffer (column-contiguous with a larger leading dimension); ``B``
    must be a Fortran-contiguous scratch array — it is overwritten with
    the solution when the zero-copy path is available. The high-level
    SciPy wrappers spend more time on copies and validation than the
    O(n² c) solve itself, hence the direct dispatch.
    """
    impl = _LDA_TRSM.get(L.dtype)
    if (
        impl is not None
        and L.strides[0] == L.dtype.itemsize
        and B.flags.f_contiguous
        and B.dtype == L.dtype
    ):
        return impl(L, B, trans)
    if not L.flags.f_contiguous:  # pragma: no cover - fallback path
        L = np.asfortranarray(L)
    (trsm,) = _get_blas_funcs(("trsm",), (L, B))
    return trsm(1.0, L, B, side=0, lower=1, trans_a=trans)

from ..exceptions import DataError, InvalidParameterError
from ..membudget import active_memory_budget
from ..parameter import Parameter
from .cg import conjugate_gradient, conjugate_gradient_block
from .kernels import kernel_matrix, kernel_row, kernel_scalar
from .precond import make_preconditioner, refresh_nystrom
from .qmatrix import (
    EXPLICIT_LIMIT,
    ExplicitQMatrix,
    ImplicitQMatrix,
    QMatrixBase,
    _validate_training_data,
    recover_bias_and_alpha,
    reduced_rhs,
)

__all__ = ["CholeskyKernelOperator", "IncrementalEngine", "IncrementalResult"]

#: Reuse the previous Nyström pivot set only while the appended chunk is
#: at most this fraction of the accumulated rows (larger appends shift
#: the spectrum enough that a fresh randomized pivot search pays off).
DEFAULT_REUSE_FRACTION = 0.25

#: Accept the previous pivots only while the mean corrected-kernel
#: diagonal stays within this factor of the value it had when the
#: factorization was (re)built.
DIAG_SHIFT_BOUND = 2.0


class CholeskyKernelOperator(QMatrixBase):
    """Reduced-system operator backed by a maintained Cholesky factor.

    ``L`` is the lower Cholesky factor of ``A = K_bar + (1/C) I`` over the
    first ``m - 1`` training points — the *uncorrected* regularized kernel
    block, whose old entries never change when rows are appended (only the
    Eq. 16 corrections move, because the eliminated point moves). Q_tilde
    decomposes as the rank-two update

        Q_tilde = A + U S U^T,   U = [q_bar, 1],   S = [[0, -1], [-1, q_mm]]

    so the factor gives both the CG matvec (two triangular GEMVs plus O(n)
    rank-two terms, no dense corrected system ever formed) and — via the
    Woodbury identity — an *exact* direct solve. The incremental engine
    extends ``L`` by one triangular solve per appended chunk and uses
    :meth:`solve_direct` as the CG initial guess, which turns the
    warm-started solve into a residual check: zero iterations up to
    factorization roundoff.
    """

    def __init__(
        self,
        X: np.ndarray,
        y: np.ndarray,
        param: Parameter,
        q_bar: np.ndarray,
        k_mm: float,
        L: np.ndarray,
        *,
        binary_labels: bool = True,
    ) -> None:
        X, y = _validate_training_data(X, y, param.dtype, binary_labels=binary_labels)
        param = param.with_gamma_for(X.shape[1])
        self.X = X
        self.X_bar = X[:-1]
        self.x_m = X[-1]
        self._finish_init(
            y, param, np.asarray(q_bar, dtype=param.dtype), float(k_mm)
        )
        n = self.shape[0]
        L = np.asarray(L)
        if L.shape != (n, n):
            raise DataError(
                f"Cholesky factor of shape {L.shape} does not match "
                f"{n + 1} training points"
            )
        self._L = L

    def _kernel_matvec(self, v: np.ndarray) -> np.ndarray:
        # A v - ridge v = K_bar v; the base class re-adds the ridge inside
        # the rank-one correction terms.
        return self._L @ (self._L.T @ v) - self.inv_cost * v

    def _kernel_matvec_multi(self, V: np.ndarray) -> np.ndarray:
        return self._L @ (self._L.T @ V) - self.inv_cost * V

    def solve_direct(self, rhs: np.ndarray) -> np.ndarray:
        """Exact ``Q_tilde x = rhs`` via the factor and Woodbury.

        One batched Cholesky solve against ``[rhs, q_bar, 1]`` and a 2x2
        core system — O(n²) total, no iterations. Accepts a vector or an
        ``(n, c)`` block of right-hand sides.
        """
        if _get_blas_funcs is None:  # pragma: no cover - guarded by the engine
            raise InvalidParameterError("solve_direct requires SciPy")
        rhs = np.asarray(rhs, dtype=self._L.dtype)
        vector = rhs.ndim == 1
        R = rhs[:, None] if vector else rhs
        n, c = R.shape
        stacked = np.empty((n, c + 2), dtype=self._L.dtype, order="F")
        stacked[:, :c] = R
        stacked[:, c] = self.q_bar
        stacked[:, c + 1] = 1.0
        Z = _trsm(self._L, _trsm(self._L, stacked, trans=0), trans=1)
        Z_rhs, Z_u = Z[:, :c], Z[:, c:]
        u_t_z_u = np.vstack([self.q_bar @ Z_u, Z_u.sum(axis=0)])
        u_t_z_rhs = np.vstack([self.q_bar @ Z_rhs, Z_rhs.sum(axis=0)])
        s_inv = np.array(
            [[-self.q_mm, -1.0], [-1.0, 0.0]], dtype=np.float64
        )
        core = s_inv + u_t_z_u.astype(np.float64)
        x = Z_rhs - Z_u @ np.linalg.solve(core, u_t_z_rhs.astype(np.float64)).astype(
            self._L.dtype
        )
        x = x.astype(self.dtype, copy=False)
        return x[:, 0] if vector else x


@dataclasses.dataclass
class IncrementalResult:
    """Outcome of one :meth:`IncrementalEngine.update`.

    ``alpha`` is the *full* multiplier vector (length ``m``, eliminated
    point recovered), shaped ``(m,)`` for vector targets or ``(m, c)``
    for block targets; ``bias`` correspondingly a float or ``(c,)``.
    ``warm_start_iterations`` is the CG iteration count when the solve
    started from the previous solution, ``0`` for a cold solve.
    """

    alpha: np.ndarray
    bias: Union[float, np.ndarray]
    result: object
    qmat: object
    new_rows: int
    warm_start: bool
    warm_start_iterations: int
    precond_reused: bool


class IncrementalEngine:
    """Accumulates training chunks and re-solves warm from the last alpha.

    Parameters
    ----------
    param:
        Kernel/C/epsilon hyper-parameters (gamma is resolved against the
        first chunk's feature count).
    precondition / precond_rank / precond_rng:
        CG preconditioning, as on :class:`~repro.core.lssvm.LSSVC`.
        ``"nystrom"`` activates pivot reuse across updates.
    binary_labels:
        ``False`` for regression targets (skips the +/-1 label check).
    explicit_limit:
        Maintain the corrected dense system (bounded recompute) up to
        this many rows; beyond it updates rebuild the matrix-free
        operator and rely on the warm start alone.
    reuse_fraction:
        Chunk-size gate for Nyström pivot reuse (see
        :data:`DEFAULT_REUSE_FRACTION`).
    """

    def __init__(
        self,
        param: Parameter,
        *,
        precondition=None,
        precond_rank: Optional[int] = None,
        precond_rng=0,
        binary_labels: bool = True,
        solver_threads: Optional[int] = None,
        tile_cache_mb: Optional[float] = None,
        compute_dtype=None,
        explicit_limit: int = EXPLICIT_LIMIT,
        reuse_fraction: float = DEFAULT_REUSE_FRACTION,
    ) -> None:
        self.param = param
        self.precondition = precondition
        self.precond_rank = precond_rank
        self.precond_rng = precond_rng
        self.binary_labels = binary_labels
        self.solver_threads = solver_threads
        self.tile_cache_mb = tile_cache_mb
        self.compute_dtype = compute_dtype
        self.explicit_limit = int(explicit_limit)
        self.reuse_fraction = float(reuse_fraction)
        self.X: Optional[np.ndarray] = None
        self.y: Optional[np.ndarray] = None
        # Explicit-path state. _q_bar/_k_mm are the raw kernel values
        # against the current eliminated point, needed to roll the Eq. 16
        # corrections forward on the next append. The preferred
        # representation is the Cholesky factor of A = K_bar + (1/C) I
        # (exact-size Fortran-ordered so BLAS solves run zero-copy): old
        # entries of A never change, so appends extend the factor with one
        # triangular solve and the solve becomes direct (see
        # CholeskyKernelOperator). Without SciPy — or after a
        # factorization failure — the engine instead maintains the
        # corrected dense Q_tilde in _dense_buf via in-place rank-two
        # fix-ups.
        self._chol_buf: Optional[np.ndarray] = None
        self._chol_n: int = 0
        self._chol_ok: bool = _get_blas_funcs is not None
        self._dense_buf: Optional[np.ndarray] = None
        self._dense_n: int = 0
        self._q_bar: Optional[np.ndarray] = None
        self._k_mm: float = 0.0
        self._alpha: Optional[np.ndarray] = None
        self._precond = None
        self._diag_mean: Optional[float] = None
        self.updates = 0

    # -- state ---------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        return 0 if self.X is None else int(self.X.shape[0])

    def seed(self, X: np.ndarray, y: np.ndarray, alpha: Optional[np.ndarray] = None) -> None:
        """Adopt an existing fit's data and solution without solving.

        Lets ``partial_fit`` continue from a model produced by a plain
        ``fit()``: the accumulated rows, targets, and full multiplier
        vector are taken over; the dense reduced system is rebuilt
        lazily on the first :meth:`update` (one O(m²) bootstrap, after
        which appends are O(m k) again).
        """
        if self.num_rows:
            raise InvalidParameterError("seed() requires an empty engine")
        X = np.ascontiguousarray(np.asarray(X, dtype=self.param.dtype))
        if X.ndim != 2:
            raise DataError("seed data must be 2-D")
        self.param = self.param.with_gamma_for(X.shape[1])
        y = np.asarray(y, dtype=self.param.dtype)
        if y.shape[0] != X.shape[0]:
            raise DataError("seed targets do not match the data rows")
        self.X = X
        self.y = y
        if alpha is not None:
            alpha = np.asarray(alpha, dtype=self.param.dtype)
            if alpha.shape[0] != X.shape[0]:
                raise DataError("seed alpha does not match the data rows")
            self._alpha = alpha

    # -- kernel maintenance --------------------------------------------------

    def _use_explicit(self, m: int) -> bool:
        if m > self.explicit_limit:
            return False
        budget = active_memory_budget()
        if budget is not None:
            gram_bytes = m * m * np.dtype(self.param.dtype).itemsize
            # The capacity buffer carries geometric headroom (up to
            # ~1.5x rows, so ~2.25x entries).
            if 2 * gram_bytes > budget:
                return False
        return True

    def _drop_dense(self) -> None:
        self._dense_buf = None
        self._dense_n = 0
        self._chol_buf = None
        self._chol_n = 0
        self._q_bar = None
        self._k_mm = 0.0

    def _grow_buffer(
        self, buf: Optional[np.ndarray], valid: int, n: int, *, zero: bool
    ) -> np.ndarray:
        """Geometrically grown ``(cap, cap)`` buffer holding ``valid`` rows.

        Growing copies the current valid block once; amortized over
        appends each entry is copied O(1) times. The first allocation
        already carries headroom so the very next append does not regrow.
        """
        if buf is not None and buf.shape[0] >= n:
            return buf
        cap = max(n, int((n if buf is None else buf.shape[0]) * 1.5) + 1)
        alloc = np.zeros if zero else np.empty
        grown = alloc((cap, cap), dtype=self.param.dtype)
        if buf is not None and valid:
            grown[:valid, :valid] = buf[:valid, :valid]
        return grown

    def _ensure_capacity(self, n: int) -> np.ndarray:
        self._dense_buf = self._grow_buffer(
            self._dense_buf, self._dense_n, n, zero=False
        )
        return self._dense_buf[:n, :n]

    def _chunk_blocks(self, X_new: np.ndarray, m_old: int):
        """The O(m k) new kernel entries: cross and corner blocks."""
        kw = self.param.kernel_kwargs()
        kernel = self.param.kernel
        dtype = self.param.dtype
        cross = kernel_matrix(X_new, self.X[:m_old], kernel, **kw).astype(
            dtype, copy=False
        )
        corner = kernel_matrix(X_new, X_new, kernel, **kw).astype(dtype, copy=False)
        return cross, corner

    def _new_q_bar(self, cross: np.ndarray, corner: np.ndarray):
        """Raw kernel values against the new eliminated point (last row)."""
        k, m_old = cross.shape
        n_new = m_old + k - 1
        q_bar_new = np.empty(n_new, dtype=self.param.dtype)
        q_bar_new[:m_old] = cross[k - 1, :]
        if k > 1:
            q_bar_new[m_old:] = corner[k - 1, : k - 1]
        return q_bar_new, float(corner[k - 1, k - 1])

    def _raw_new_rows(self, cross: np.ndarray, corner: np.ndarray) -> np.ndarray:
        """Raw kernel rows of the new *reduced* rows against all of them.

        The new reduced rows are the old eliminated point (global index
        ``m_old - 1`` — its raw kernel column is exactly the retired
        ``q_bar``/``k_mm``) followed by the appended rows except the last.
        Must be called before ``_q_bar``/``_k_mm`` are rolled forward.
        """
        k, m_old = cross.shape
        n_old = m_old - 1
        n_new = m_old + k - 1
        raw = np.empty((k, n_new), dtype=self.param.dtype)
        raw[0, :n_old] = self._q_bar
        raw[0, n_old] = self._k_mm
        if k > 1:
            raw[0, n_old + 1 :] = cross[: k - 1, m_old - 1]
            raw[1:, :m_old] = cross[: k - 1, :]
            raw[1:, m_old:] = corner[: k - 1, : k - 1]
        return raw

    def _grow_dense(self, X_new: np.ndarray, old_rows: int) -> ExplicitQMatrix:
        """Extend the corrected dense system by the appended rows.

        Kernel work is O(m k) (cross + corner blocks); the old ``(n, n)``
        block never re-evaluates a kernel entry — the eliminated point
        moved from ``x_{m_old}`` to ``x_{m_new}``, which shifts every old
        entry of Eq. 16 by ``a_i + a_j + c`` for
        ``a = q_bar_old - q_bar_new[:n_old]`` and
        ``c = q_mm_new - q_mm_old``: two in-place broadcast passes. The
        old eliminated point re-enters as the first regular new row, its
        raw kernel column being exactly the retired ``q_bar_old``.
        """
        inv_cost = 1.0 / self.param.cost
        k = X_new.shape[0]
        m_old = old_rows
        n_old = m_old - 1
        n_new = m_old + k - 1
        cross, corner = self._chunk_blocks(X_new, m_old)
        rows = self._raw_new_rows(cross, corner)
        q_bar_new, k_mm_new = self._new_q_bar(cross, corner)
        c = k_mm_new - self._k_mm  # q_mm delta; the ridge term cancels

        D = self._ensure_capacity(n_new)
        old_block = D[:n_old, :n_old]
        a = self._q_bar - q_bar_new[:n_old]
        old_block += a[:, None]
        old_block += (a + c)[None, :]

        # New regular rows: apply the Eq. 16 corrections in place.
        rows -= q_bar_new[None, :]
        rows -= q_bar_new[n_old:, None]
        rows += k_mm_new + inv_cost  # q_mm_new
        idx = np.arange(k)
        rows[idx, n_old + idx] += inv_cost
        D[n_old:n_new, :] = rows
        D[:n_old, n_old:n_new] = rows[:, :n_old].T

        self._q_bar = q_bar_new
        self._k_mm = k_mm_new
        self._dense_n = n_new
        return ExplicitQMatrix.from_parts(
            self.X,
            self.y[:, 0] if self.y.ndim == 2 else self.y,
            self.param,
            q_bar_new,
            k_mm_new,
            D,
            binary_labels=self.binary_labels,
        )

    def _bootstrap_dense(self, y_col: np.ndarray) -> ExplicitQMatrix:
        """Full O(m²) build (first explicit update, or after a fallback)."""
        qmat = ExplicitQMatrix(
            self.X, y_col, self.param, binary_labels=self.binary_labels
        )
        n = qmat.shape[0]
        D = self._ensure_capacity(n)
        D[:] = qmat._dense
        qmat._dense = D  # future updates mutate the buffer in place
        self._q_bar = np.array(qmat.q_bar)
        self._k_mm = qmat.k_mm
        self._dense_n = n
        return qmat

    @staticmethod
    def _copy_lower(dst: np.ndarray, src: np.ndarray, n: int, step: int = 256) -> None:
        """Copy the lower triangle of ``src[:n, :n]`` in column blocks.

        Both triangles are zero above the diagonal, so only the lower
        trapezoid has to move — half the traffic of a square copy, which
        matters because factor copies are the dominant fixed cost of the
        (rare) capacity regrows.
        """
        for j0 in range(0, n, step):
            j1 = min(j0 + step, n)
            dst[j0:n, j0:j1] = src[j0:n, j0:j1]

    def _ensure_chol_capacity(self, n: int) -> np.ndarray:
        """Fortran-ordered capacity buffer holding the current factor.

        The factor of ``A`` only ever *extends* (old entries are final),
        so it lives in a geometrically grown ``(cap, cap)`` buffer and
        appends write just the new W / Schur blocks — no per-append
        O(n²) copy. Solves run against the leading ``(n, n)`` view with
        the buffer's leading dimension (see :func:`_trsm`).
        """
        buf = self._chol_buf
        if buf is not None and buf.shape[0] >= n:
            return buf
        cap = max(n, int((n if buf is None else buf.shape[0]) * 1.5) + 1)
        grown = np.zeros((cap, cap), dtype=self.param.dtype, order="F")
        if buf is not None and self._chol_n:
            self._copy_lower(grown, buf, self._chol_n)
        self._chol_buf = grown
        return grown

    def _make_chol_operator(self, y_col, L) -> CholeskyKernelOperator:
        return CholeskyKernelOperator(
            self.X,
            y_col,
            self.param,
            self._q_bar,
            self._k_mm,
            L,
            binary_labels=self.binary_labels,
        )

    def _bootstrap_cholesky(
        self, y_col: np.ndarray
    ) -> Optional[CholeskyKernelOperator]:
        """Full factorization of ``A = K_bar + (1/C) I`` — the one-time
        O(m² d) kernel build plus an O(m³) Cholesky. Returns ``None`` (and
        permanently falls back to the dense path) when the factorization
        fails, e.g. a numerically indefinite block in float32.
        """
        kw = self.param.kernel_kwargs()
        kernel = self.param.kernel
        dtype = self.param.dtype
        X_bar, x_m = self.X[:-1], self.X[-1]
        n = X_bar.shape[0]
        A = kernel_matrix(X_bar, X_bar, kernel, **kw).astype(dtype, copy=False)
        A[np.diag_indices(n)] += 1.0 / self.param.cost
        try:
            # A is symmetric, so its C-ordered buffer doubles as the
            # Fortran-ordered matrix: potrf runs in place, zero-copy.
            factor = _sla_cholesky(
                A.T, lower=True, overwrite_a=True, check_finite=False
            )
        except np.linalg.LinAlgError:
            self._chol_ok = False
            self._chol_buf = None
            self._chol_n = 0
            return None
        buf = self._ensure_chol_capacity(n)
        if self._chol_n:
            # Reused buffer: clear every stale factor entry (the upper
            # triangle of the live view must read as zeros for matvecs).
            high_water = max(self._chol_n, n)
            buf[:high_water, :high_water] = 0.0
        self._copy_lower(buf, factor, n)
        self._chol_n = n
        self._q_bar = kernel_row(x_m, X_bar, kernel, **kw).astype(dtype, copy=False)
        self._k_mm = float(kernel_scalar(x_m, x_m, kernel, **kw))
        return self._make_chol_operator(y_col, buf[:n, :n])

    def _grow_cholesky(
        self, X_new: np.ndarray, old_rows: int, y_col: np.ndarray
    ) -> Optional[CholeskyKernelOperator]:
        """Extend the factor of ``A`` by the appended rows.

        ``A``'s old block is static (no eliminated-point corrections), so
        this is the textbook blocked extension: one triangular solve
        ``W = L11^{-1} A12`` (O(n² k)), a k x k Schur Cholesky, zero
        re-factorization of the old block. The factor extends *in place*
        inside the capacity buffer — the append writes only the new
        ``W^T`` strip and Schur corner. A numerically indefinite Schur
        block (accumulated roundoff after very many appends) triggers one
        full re-factorization instead of failing.
        """
        inv_cost = 1.0 / self.param.cost
        k = X_new.shape[0]
        m_old = old_rows
        n_old = m_old - 1
        n_new = m_old + k - 1
        cross, corner = self._chunk_blocks(X_new, m_old)
        raw = self._raw_new_rows(cross, corner)
        q_bar_new, k_mm_new = self._new_q_bar(cross, corner)

        buf = self._ensure_chol_capacity(n_new)
        a12 = np.asfortranarray(raw[:, :n_old].T)
        W = _trsm(buf[:n_old, :n_old], a12, trans=0)  # (n_old, k)
        schur = np.array(raw[:, n_old:], dtype=self.param.dtype)
        schur[np.diag_indices(k)] += inv_cost
        schur -= W.T @ W
        schur = 0.5 * (schur + schur.T)
        try:
            corner_factor = np.linalg.cholesky(schur)
        except np.linalg.LinAlgError:
            self._chol_n = 0  # force a clean re-factorization
            return self._bootstrap_cholesky(y_col)
        buf[n_old:n_new, :n_old] = W.T
        buf[n_old:n_new, n_old:n_new] = corner_factor

        self._chol_n = n_new
        self._q_bar = q_bar_new
        self._k_mm = k_mm_new
        return self._make_chol_operator(y_col, buf[:n_new, :n_new])

    # -- preconditioning -----------------------------------------------------

    def _preconditioner(self, qmat, old_rows: int, new_rows: int):
        """Resolve the preconditioner, reusing Nyström pivots when safe."""
        kind = self.precondition
        if kind is None:
            return None, False
        diag_mean = None
        if isinstance(kind, str) and kind.strip().lower() == "nystrom":
            diag_mean = float(
                np.mean(
                    np.asarray(qmat.diagonal(), dtype=np.float64)
                    - np.asarray(qmat.ridge_bar, dtype=np.float64)
                )
            )
            prev = self._precond
            reuse = (
                prev is not None
                and getattr(prev, "pivots", ())
                and old_rows > 0
                and new_rows <= self.reuse_fraction * old_rows
                and self._diag_mean is not None
                and self._diag_mean > 0
                and 1.0 / DIAG_SHIFT_BOUND
                <= diag_mean / self._diag_mean
                <= DIAG_SHIFT_BOUND
            )
            if reuse:
                precond = refresh_nystrom(qmat, prev.pivots)
                self._precond = precond
                self._diag_mean = diag_mean
                return precond, True
        precond = make_preconditioner(
            qmat, kind, rank=self.precond_rank, rng=self.precond_rng
        )
        self._precond = precond
        self._diag_mean = diag_mean
        return precond, False

    # -- the update ----------------------------------------------------------

    def update(self, X_new: np.ndarray, y_new: np.ndarray) -> IncrementalResult:
        """Append ``(X_new, y_new)`` and re-solve warm from the last alpha.

        The first call on an empty (non-seeded) engine is the initial
        cold fit. ``y_new`` may be ``(k,)`` targets or an ``(k, c)``
        one-vs-all block; the block form routes through warm-started
        block CG.
        """
        X_new = np.ascontiguousarray(np.asarray(X_new, dtype=self.param.dtype))
        if X_new.ndim != 2:
            raise DataError(f"chunk must be 2-D, got ndim={X_new.ndim}")
        y_new = np.asarray(y_new, dtype=self.param.dtype)
        if y_new.shape[0] != X_new.shape[0]:
            raise DataError(
                f"chunk rows ({X_new.shape[0]}) and targets "
                f"({y_new.shape[0]}) differ"
            )
        old_rows = self.num_rows
        if old_rows == 0:
            self.param = self.param.with_gamma_for(X_new.shape[1])
            self.X = X_new
            self.y = y_new
        else:
            if X_new.shape[1] != self.X.shape[1]:
                raise DataError(
                    f"chunk has {X_new.shape[1]} features, accumulated data "
                    f"has {self.X.shape[1]}"
                )
            if y_new.ndim != self.y.ndim or (
                y_new.ndim == 2 and y_new.shape[1] != self.y.shape[1]
            ):
                raise DataError("chunk targets do not match the accumulated shape")
            if X_new.shape[0] == 0:
                raise DataError("chunk is empty; nothing to append")
            self.X = np.ascontiguousarray(np.vstack([self.X, X_new]))
            self.y = np.concatenate([self.y, y_new], axis=0)
        m = self.num_rows
        block = self.y.ndim == 2
        y_col = self.y[:, 0] if block else self.y

        qmat = None
        if self._use_explicit(m):
            state_valid = (
                old_rows > 0
                and self._q_bar is not None
                and self._q_bar.shape[0] == old_rows - 1
            )
            if self._chol_ok:
                if state_valid and self._chol_n == old_rows - 1:
                    qmat = self._grow_cholesky(X_new, old_rows, y_col)
                else:
                    qmat = self._bootstrap_cholesky(y_col)
                # qmat is None when the factorization failed: fall through
                # to the maintained-dense path (state_valid no longer
                # holds for it unless its own buffer tracked, so rebuild).
            if qmat is None:
                if state_valid and self._dense_n == old_rows - 1:
                    qmat = self._grow_dense(X_new, old_rows)
                else:
                    qmat = self._bootstrap_dense(y_col)
        else:
            self._drop_dense()
            qmat = ImplicitQMatrix(
                self.X,
                y_col,
                self.param,
                binary_labels=self.binary_labels,
                solver_threads=self.solver_threads,
                tile_cache_mb=self.tile_cache_mb,
                compute_dtype=self.compute_dtype,
            )
        # self.X survives qmatrix validation unchanged (already contiguous
        # in the working dtype), so model support vectors alias it.
        self.X = qmat.X
        self.param = qmat.param

        n = qmat.shape[0]
        if block:
            B = self.y[:-1, :] - self.y[-1:, :]
        else:
            b = reduced_rhs(self.y)
        x0 = None
        prev_alpha = self._alpha
        if isinstance(qmat, CholeskyKernelOperator):
            # The maintained factor solves the new system outright; CG
            # degenerates to a residual check (0 iterations up to
            # factorization roundoff) that certifies the direct solve.
            x0 = qmat.solve_direct(B if block else b)
        elif prev_alpha is not None and 0 < prev_alpha.shape[0] <= n:
            # The previous full alpha (eliminated point recovered) maps
            # verbatim onto the leading entries of the new unknown.
            p = prev_alpha.shape[0]
            shape = (n, prev_alpha.shape[1]) if block else (n,)
            x0 = np.zeros(shape, dtype=qmat.dtype)
            x0[:p] = prev_alpha
            if p < n and isinstance(qmat, ExplicitQMatrix):
                # Block Gauss–Seidel init for the genuinely new
                # coordinates: solve them exactly given the old ones.
                # The initial residual is concentrated here (the old
                # coordinates already carry a near-solution), so this
                # O(n k + k³) step removes most of what CG would
                # otherwise spend its first dozens of iterations on.
                D = qmat._dense
                rhs_tail = B[p:, :] if block else b[p:]
                r_tail = rhs_tail - D[p:, :p] @ x0[:p]
                try:
                    x0[p:] = np.linalg.solve(D[p:, p:], r_tail)
                except np.linalg.LinAlgError:  # pragma: no cover - SPD block
                    pass

        if isinstance(qmat, CholeskyKernelOperator):
            # Preconditioning is moot behind an exact initial guess, and
            # building one would dominate the refit. (nystrom/jacobi still
            # apply on the fallback and matrix-free paths.)
            precond, precond_reused = None, False
        else:
            precond, precond_reused = self._preconditioner(
                qmat, old_rows, m - old_rows
            )

        if block:
            result = conjugate_gradient_block(
                qmat,
                B,
                epsilon=self.param.epsilon,
                max_iter=self.param.max_iter,
                X0=x0,
                preconditioner=precond,
            )
            sums = result.X.sum(axis=0)
            biases = (
                self.y[-1, :].astype(np.float64)
                + qmat.q_mm * sums
                - qmat.q_bar @ result.X
            )
            alpha = np.vstack([result.X, -sums[None, :]]).astype(
                qmat.dtype, copy=False
            )
            bias: Union[float, np.ndarray] = np.asarray(biases, dtype=np.float64)
        else:
            result = conjugate_gradient(
                qmat,
                b,
                epsilon=self.param.epsilon,
                max_iter=self.param.max_iter,
                x0=x0,
                preconditioner=precond,
            )
            alpha, bias = recover_bias_and_alpha(qmat, result.x)

        self._alpha = alpha
        self.updates += 1
        # "Warm" means the solve continued from prior state — a previous
        # alpha or the maintained factorization. The very first update of
        # an empty engine is cold even when the direct init applies.
        warm = x0 is not None and old_rows > 0
        return IncrementalResult(
            alpha=alpha,
            bias=bias,
            result=result,
            qmat=qmat,
            new_rows=m - old_rows,
            warm_start=warm,
            warm_start_iterations=result.iterations if warm else 0,
            precond_reused=precond_reused,
        )
