"""Trained LS-SVM model container and LIBSVM-format serialization.

An LS-SVM interprets *every* training point as a support vector (§II-C), so
the model stores the full training set together with the learned multipliers
``alpha`` and bias ``b``. The decision function is

    f(x) = sum_i alpha_i * k(x_i, x) + b

(the labels are already folded into the alphas by the linear system of
Eq. 11, so no explicit ``y_i`` factor appears).

The on-disk format is the LIBSVM model format — the reproduction keeps
PLSSVM's drop-in compatibility promise, mapping ``rho = -b`` and writing one
``alpha_i`` coefficient per support vector row.

A second, *compact* artifact kind exists for the randomized ``rff``
solver: :class:`FeatureMapModel` stores random-Fourier-feature weights
instead of the full support set, so the file is O(r·d) rather than
O(m·d) and prediction costs O(r·d) per row. It serializes as a small
JSON document; :func:`load_model` sniffs the two formats apart (a
compact file starts with ``{``, a LIBSVM file never does), so every
consumer — the predict CLI, the serving registry — loads either kind
through the same entry point.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Optional, Sequence, TextIO, Tuple, Union

import numpy as np

from ..exceptions import ModelFormatError, NotFittedError
from ..parameter import Parameter
from ..types import KernelType
from .kernels import kernel_matrix

__all__ = [
    "LSSVMModel",
    "FeatureMapModel",
    "MODEL_TYPES",
    "save_model",
    "load_model",
]

#: On-disk format tag of the compact feature-map artifact.
COMPACT_FORMAT = "plssvm-compact"
COMPACT_FORMAT_VERSION = 1

_KERNEL_NAMES = {
    KernelType.LINEAR: "linear",
    KernelType.POLYNOMIAL: "polynomial",
    KernelType.RBF: "rbf",
    KernelType.SIGMOID: "sigmoid",
}
_KERNEL_FROM_NAME = {v: k for k, v in _KERNEL_NAMES.items()}


@dataclasses.dataclass
class LSSVMModel:
    """A fitted LS-SVM binary classifier.

    Attributes
    ----------
    support_vectors:
        The full training set, shape ``(m, d)``.
    alpha:
        Lagrange multipliers, shape ``(m,)`` (sums to zero by the equality
        constraint of Eq. 11).
    bias:
        Hyperplane offset ``b``.
    param:
        Hyper-parameters used during training (with gamma resolved).
    labels:
        The two original class labels, ordered as ``(positive, negative)``
        — i.e. ``labels[0]`` is the class encoded internally as ``+1``.
    """

    support_vectors: np.ndarray
    alpha: np.ndarray
    bias: float
    param: Parameter
    labels: Tuple[float, float] = (1.0, -1.0)

    def __post_init__(self) -> None:
        self.support_vectors = np.asarray(self.support_vectors, dtype=self.param.dtype)
        self.alpha = np.asarray(self.alpha, dtype=self.param.dtype).ravel()
        if self.support_vectors.ndim != 2:
            raise ModelFormatError("support vectors must form a 2-D array")
        if self.alpha.shape[0] != self.support_vectors.shape[0]:
            raise ModelFormatError(
                f"{self.alpha.shape[0]} coefficients for "
                f"{self.support_vectors.shape[0]} support vectors"
            )

    @property
    def num_support_vectors(self) -> int:
        return self.support_vectors.shape[0]

    @property
    def num_features(self) -> int:
        return self.support_vectors.shape[1]

    def weight_vector(self) -> np.ndarray:
        """The primal normal vector ``w = sum_i alpha_i x_i`` (Eq. 15).

        Only the linear kernel has an explicit primal representation (for
        the others ``w`` lives in the implicit feature space). With ``w``
        in hand, prediction costs O(d) per point instead of O(m d) — the
        reason PLSSVM derives it at the end of training. Computed lazily
        and cached.
        """
        if self.param.kernel is not KernelType.LINEAR:
            raise ModelFormatError(
                f"the explicit weight vector exists only for the linear kernel, "
                f"not {self.param.kernel}"
            )
        cached = getattr(self, "_weight_cache", None)
        if cached is None:
            cached = self.alpha @ self.support_vectors
            self._weight_cache = cached
        return cached

    def tile_rows_for_budget(self, max_tile_mb: float) -> int:
        """Kernel-row tile height that keeps one tile under ``max_tile_mb``.

        One tile holds ``tile_rows * num_support_vectors`` kernel entries;
        this solves for the row count (at least 1) whose tile stays within
        the byte budget — the same budget idiom as ``tile_cache_mb`` on
        the training side.
        """
        if max_tile_mb <= 0:
            raise ModelFormatError("max_tile_mb must be positive")
        budget = int(max_tile_mb * 1024 * 1024)
        per_row = max(1, self.num_support_vectors) * np.dtype(self.param.dtype).itemsize
        return max(1, budget // per_row)

    def decision_function(
        self,
        X: np.ndarray,
        *,
        tile_rows: Optional[int] = None,
        max_tile_mb: float = 64.0,
    ) -> np.ndarray:
        """Signed distance surrogate ``f(x)`` for each row of ``X``.

        The linear kernel takes the O(d)-per-point primal fast path through
        :meth:`weight_vector`; the non-linear kernels evaluate the kernel
        expansion in row tiles so prediction memory stays bounded for any
        test-set size: the tile height is derived from ``max_tile_mb``
        (never materializing the full ``n_test x n_sv`` kernel matrix),
        unless ``tile_rows`` pins it explicitly. Chunking does not change
        the values — each output row is an independent kernel-row dot
        product.

        For repeated prediction (serving), prefer :meth:`engine`, which
        hoists the row norms and casts out of the per-call path.
        """
        X = np.asarray(X, dtype=self.param.dtype)
        single = X.ndim == 1
        if single:
            X = X[None, :]
        if X.shape[1] != self.num_features:
            raise ModelFormatError(
                f"test data has {X.shape[1]} features, model expects {self.num_features}"
            )
        if self.param.kernel is KernelType.LINEAR:
            out = X @ self.weight_vector() + self.bias
            return out[0] if single else out
        if tile_rows is None:
            tile_rows = self.tile_rows_for_budget(max_tile_mb)
        elif tile_rows <= 0:
            raise ModelFormatError("tile_rows must be positive")
        kw = self.param.kernel_kwargs()
        out = np.empty(X.shape[0], dtype=self.param.dtype)
        for start in range(0, X.shape[0], tile_rows):
            rows = slice(start, min(start + tile_rows, X.shape[0]))
            K = kernel_matrix(X[rows], self.support_vectors, self.param.kernel, **kw)
            out[rows] = K @ self.alpha
        out += self.bias
        return out[0] if single else out

    def engine(self, **kwargs):
        """A warm :class:`repro.serve.PredictionEngine` over this model.

        The serving path: precomputed RBF row norms, compute-dtype casts,
        and threaded tile sweeps, amortized across calls. Keyword
        arguments forward to the engine constructor (``solver_threads``,
        ``compute_dtype``, ``tile_rows``, ...). Imported lazily —
        ``core`` stays below ``serve`` in the layering.

        Engines are cached per keyword combination: an engine's hoisted
        state (row norms, casts) is only valid for the coefficients it
        was built from, so anything that mutates the model — a
        ``partial_fit`` refit — must call :meth:`invalidate_caches`,
        after which the next ``engine()`` call rebuilds fresh.
        """
        from ..serve.engine import PredictionEngine

        try:
            key = tuple(sorted(kwargs.items()))
            hash(key)
        except TypeError:
            # Unhashable kwarg (a live generator, an array): no caching.
            return PredictionEngine(self, **kwargs)
        cache = getattr(self, "_engine_cache", None)
        if cache is None:
            cache = {}
            self._engine_cache = cache
        engine = cache.get(key)
        if engine is None:
            engine = PredictionEngine(self, **kwargs)
            cache[key] = engine
        return engine

    def invalidate_caches(self) -> None:
        """Drop derived state after an in-place mutation of the model.

        Clears the cached prediction engines and the lazy linear weight
        vector, then fires every registered invalidation hook — the
        mechanism a :class:`repro.serve.registry.ModelRegistry` uses to
        bump its generation (and drop its warm engine) the moment a
        ``partial_fit`` refit rewrites ``alpha``/``support_vectors``, so
        serving never answers from a stale solution.
        """
        self._engine_cache = {}
        self._weight_cache = None
        for hook in tuple(getattr(self, "_invalidation_hooks", {}).values()):
            hook(self)

    def add_invalidation_hook(self, key, hook) -> None:
        """Register ``hook(model)`` to fire on :meth:`invalidate_caches`.

        ``key`` deduplicates registrations (re-adding under the same key
        replaces the previous hook).
        """
        hooks = getattr(self, "_invalidation_hooks", None)
        if hooks is None:
            hooks = {}
            self._invalidation_hooks = hooks
        hooks[key] = hook

    def remove_invalidation_hook(self, key) -> None:
        getattr(self, "_invalidation_hooks", {}).pop(key, None)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted class labels (in the original label alphabet)."""
        f = np.atleast_1d(self.decision_function(X))
        pos, neg = self.labels
        return np.where(f >= 0.0, pos, neg)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Classification accuracy on ``(X, y)``."""
        y = np.asarray(y).ravel()
        pred = self.predict(X)
        if pred.shape[0] != y.shape[0]:
            raise ModelFormatError("label vector length does not match data")
        return float(np.mean(pred == y))

    def save(self, path: Union[str, Path]) -> None:
        save_model(self, path)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "LSSVMModel":
        return load_model(path)


@dataclasses.dataclass
class FeatureMapModel:
    """A compact fitted LS-SVM: feature-map weights, no support set.

    Produced by the ``rff`` solver strategy: the decision function is the
    *primal* form over the random Fourier features,

        f(x) = z(x) . w + b,      z(x) = sqrt(2/r) cos(x Omega + offsets)

    so prediction never touches training points — O(r·d) per row versus
    the exact model's O(m·d). The sampled frequencies ``Omega`` and phase
    ``offsets`` are part of the model (they *are* the kernel
    approximation); ``seed`` records the solver seed for provenance.

    Attributes
    ----------
    omega:
        Sampled frequencies, shape ``(d, r)``.
    offsets:
        Phase offsets, shape ``(r,)``.
    weights:
        Primal weight vector over the features, shape ``(r,)``.
    bias:
        Hyperplane offset ``b``.
    param:
        Hyper-parameters used during training (gamma resolved).
    labels:
        The two original class labels, ``(positive, negative)``.
    seed:
        The solver seed the frequencies were drawn with (``None`` when a
        live generator was passed).
    """

    omega: np.ndarray
    offsets: np.ndarray
    weights: np.ndarray
    bias: float
    param: Parameter
    labels: Tuple[float, float] = (1.0, -1.0)
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        self.omega = np.ascontiguousarray(np.asarray(self.omega, dtype=self.param.dtype))
        self.offsets = np.asarray(self.offsets, dtype=self.param.dtype).ravel()
        self.weights = np.asarray(self.weights, dtype=self.param.dtype).ravel()
        if self.omega.ndim != 2:
            raise ModelFormatError("feature-map frequencies must form a 2-D array")
        if self.offsets.shape[0] != self.omega.shape[1]:
            raise ModelFormatError(
                f"{self.offsets.shape[0]} offsets for {self.omega.shape[1]} frequencies"
            )
        if self.weights.shape[0] != self.omega.shape[1]:
            raise ModelFormatError(
                f"{self.weights.shape[0]} weights for {self.omega.shape[1]} features"
            )

    @property
    def num_features(self) -> int:
        return self.omega.shape[0]

    @property
    def rank(self) -> int:
        """Feature-map width ``r`` (the model's whole size driver)."""
        return self.omega.shape[1]

    @property
    def num_support_vectors(self) -> int:
        """0 — the compact model keeps no support set (drop-in introspection)."""
        return 0

    @property
    def nbytes(self) -> int:
        return self.omega.nbytes + self.offsets.nbytes + self.weights.nbytes

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Feature rows ``z(x)``; shape ``(n, r)``."""
        X = np.asarray(X, dtype=self.param.dtype)
        single = X.ndim == 1
        if single:
            X = X[None, :]
        if X.shape[1] != self.num_features:
            raise ModelFormatError(
                f"test data has {X.shape[1]} features, model expects {self.num_features}"
            )
        Z = X @ self.omega
        Z += self.offsets
        np.cos(Z, out=Z)
        Z *= np.sqrt(2.0 / self.rank)
        return Z[0] if single else Z

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """``f(x) = z(x) . w + b`` per row — the generalized primal fast path."""
        return self.transform(X) @ self.weights + self.bias

    def engine(self, **kwargs):
        """A warm :class:`repro.serve.PredictionEngine` over this model."""
        from ..serve.engine import PredictionEngine

        return PredictionEngine(self, **kwargs)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted class labels (in the original label alphabet)."""
        f = np.atleast_1d(self.decision_function(X))
        pos, neg = self.labels
        return np.where(f >= 0.0, pos, neg)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Classification accuracy on ``(X, y)``."""
        y = np.asarray(y).ravel()
        pred = self.predict(X)
        if pred.shape[0] != y.shape[0]:
            raise ModelFormatError("label vector length does not match data")
        return float(np.mean(pred == y))

    def save(self, path: Union[str, Path]) -> None:
        save_compact_model(self, path)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FeatureMapModel":
        return load_compact_model(path)


#: Every fitted-model artifact kind (isinstance checks in registries etc.).
MODEL_TYPES = (LSSVMModel, FeatureMapModel)


def save_compact_model(model: FeatureMapModel, path: Union[str, Path]) -> None:
    """Write the compact feature-map artifact as JSON.

    Floats serialize via ``repr`` (Python's ``json``), which round-trips
    IEEE doubles exactly — a saved/loaded compact model predicts
    bit-identically to the in-memory one.
    """
    param = model.param
    doc = {
        "format": COMPACT_FORMAT,
        "version": COMPACT_FORMAT_VERSION,
        "kind": "rff",
        "kernel_type": _KERNEL_NAMES[param.kernel],
        "gamma": param.gamma,
        "cost": param.cost,
        "rho": -model.bias,
        "label": [model.labels[0], model.labels[1]],
        "seed": model.seed,
        "num_features": model.num_features,
        "rank": model.rank,
        "omega": model.omega.tolist(),
        "offsets": model.offsets.tolist(),
        "weights": model.weights.tolist(),
    }
    Path(path).write_text(json.dumps(doc), encoding="ascii")


def load_compact_model(path: Union[str, Path]) -> FeatureMapModel:
    """Read a compact model written by :func:`save_compact_model`."""
    try:
        doc = json.loads(Path(path).read_text(encoding="ascii"))
    except json.JSONDecodeError as exc:
        raise ModelFormatError(f"compact model is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("format") != COMPACT_FORMAT:
        raise ModelFormatError(
            f"not a compact model file (format tag {doc.get('format')!r})"
        )
    if doc.get("version") != COMPACT_FORMAT_VERSION:
        raise ModelFormatError(
            f"unsupported compact model version {doc.get('version')!r}"
        )
    for required in ("kernel_type", "rho", "omega", "offsets", "weights"):
        if required not in doc:
            raise ModelFormatError(f"compact model missing {required!r}")
    try:
        kernel = _KERNEL_FROM_NAME[doc["kernel_type"]]
    except KeyError:
        raise ModelFormatError(
            f"unsupported kernel_type {doc['kernel_type']!r}"
        ) from None
    param = Parameter(
        kernel=kernel,
        cost=float(doc.get("cost", 1.0)),
        gamma=float(doc["gamma"]) if doc.get("gamma") is not None else None,
    )
    labels = tuple(float(v) for v in doc.get("label", (1.0, -1.0)))
    if len(labels) != 2:
        raise ModelFormatError("compact model must list exactly two labels")
    seed = doc.get("seed")
    return FeatureMapModel(
        omega=np.asarray(doc["omega"], dtype=np.float64),
        offsets=np.asarray(doc["offsets"], dtype=np.float64),
        weights=np.asarray(doc["weights"], dtype=np.float64),
        bias=-float(doc["rho"]),
        param=param,
        labels=labels,  # type: ignore[arg-type]
        seed=int(seed) if seed is not None else None,
    )


def _write_sparse_row(stream: TextIO, coef: float, features: Sequence[float]) -> None:
    parts = [f"{coef:.17g}"]
    for idx, value in enumerate(features, start=1):
        if value != 0.0:
            parts.append(f"{idx}:{value:.17g}")
    stream.write(" ".join(parts))
    stream.write("\n")


def save_model(model: LSSVMModel, path: Union[str, Path]) -> None:
    """Write ``model`` in the LIBSVM model file format.

    The header mirrors LIBSVM/PLSSVM: ``rho`` is the negated bias, ``label``
    lists the class labels in internal (+1, -1) order, and every training
    point appears in the SV section (``nr_sv`` counts per class follow the
    sign of the training labels, which LS-SVM keeps alongside the alphas).
    """
    param = model.param
    path = Path(path)
    with path.open("w", encoding="ascii") as f:
        f.write("svm_type c_svc\n")
        f.write(f"kernel_type {_KERNEL_NAMES[param.kernel]}\n")
        if param.kernel is KernelType.POLYNOMIAL:
            f.write(f"degree {param.degree}\n")
        if param.kernel is not KernelType.LINEAR:
            f.write(f"gamma {param.gamma:.17g}\n")
        if param.kernel in (KernelType.POLYNOMIAL, KernelType.SIGMOID):
            f.write(f"coef0 {param.coef0:.17g}\n")
        f.write("nr_class 2\n")
        f.write(f"total_sv {model.num_support_vectors}\n")
        f.write(f"rho {-model.bias:.17g}\n")
        pos, neg = model.labels
        f.write(f"label {_format_label(pos)} {_format_label(neg)}\n")
        n_pos = int(np.count_nonzero(model.alpha >= 0.0))
        f.write(f"nr_sv {n_pos} {model.num_support_vectors - n_pos}\n")
        f.write("SV\n")
        for coef, row in zip(model.alpha, model.support_vectors):
            _write_sparse_row(f, float(coef), row)


def _format_label(label: float) -> str:
    return f"{int(label)}" if float(label).is_integer() else f"{label:g}"


def load_model(path: Union[str, Path]) -> Union[LSSVMModel, FeatureMapModel]:
    """Read a model file of either artifact kind.

    Sniffs the format: a compact feature-map model is a JSON object (its
    first non-whitespace character is ``{``, which no LIBSVM model file
    starts with); anything else parses as the LIBSVM format written by
    :func:`save_model`.
    """
    path = Path(path)
    with path.open("r", encoding="ascii") as probe:
        head = probe.read(64)
    if head.lstrip()[:1] == "{":
        return load_compact_model(path)
    header: dict = {}
    sv_lines: list = []
    with path.open("r", encoding="ascii") as f:
        in_sv = False
        for raw in f:
            line = raw.strip()
            if not line:
                continue
            if in_sv:
                sv_lines.append(line)
                continue
            if line == "SV":
                in_sv = True
                continue
            key, _, value = line.partition(" ")
            header[key] = value.strip()

    for required in ("svm_type", "kernel_type", "rho", "total_sv"):
        if required not in header:
            raise ModelFormatError(f"model file missing '{required}' header line")
    if header["svm_type"] != "c_svc":
        raise ModelFormatError(f"unsupported svm_type {header['svm_type']!r}")
    try:
        kernel = _KERNEL_FROM_NAME[header["kernel_type"]]
    except KeyError:
        raise ModelFormatError(
            f"unsupported kernel_type {header['kernel_type']!r}"
        ) from None

    param = Parameter(
        kernel=kernel,
        gamma=float(header["gamma"]) if "gamma" in header else None,
        degree=int(header.get("degree", 3)),
        coef0=float(header.get("coef0", 0.0)),
    )
    bias = -float(header["rho"])
    total_sv = int(header["total_sv"])
    if total_sv != len(sv_lines):
        raise ModelFormatError(
            f"header announces {total_sv} support vectors, file contains {len(sv_lines)}"
        )
    labels: Tuple[float, float] = (1.0, -1.0)
    if "label" in header:
        parts = header["label"].split()
        if len(parts) != 2:
            raise ModelFormatError("binary model must list exactly two labels")
        labels = (float(parts[0]), float(parts[1]))

    alphas = np.empty(total_sv, dtype=np.float64)
    feature_maps = []
    max_index = 0
    for i, line in enumerate(sv_lines):
        tokens = line.split()
        try:
            alphas[i] = float(tokens[0])
        except (ValueError, IndexError):
            raise ModelFormatError(f"malformed SV line {i + 1}: {line!r}") from None
        entries = {}
        for token in tokens[1:]:
            idx_str, _, val_str = token.partition(":")
            try:
                idx, val = int(idx_str), float(val_str)
            except ValueError:
                raise ModelFormatError(
                    f"malformed feature entry {token!r} on SV line {i + 1}"
                ) from None
            if idx < 1:
                raise ModelFormatError(f"feature indices are 1-based, got {idx}")
            entries[idx] = val
            max_index = max(max_index, idx)
        feature_maps.append(entries)

    X = np.zeros((total_sv, max_index), dtype=np.float64)
    for i, entries in enumerate(feature_maps):
        for idx, val in entries.items():
            X[i, idx - 1] = val
    return LSSVMModel(
        support_vectors=X, alpha=alphas, bias=bias, param=param, labels=labels
    )


def require_fitted(model: Optional[LSSVMModel], what: str = "model") -> LSSVMModel:
    """Raise :class:`NotFittedError` when ``model`` is ``None``."""
    if model is None:
        raise NotFittedError(f"{what} is not fitted yet; call fit() first")
    return model
