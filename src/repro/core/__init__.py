"""Core LS-SVM machinery: kernels, the implicit reduced system, CG, and the estimator.

The public entry point for most users is :class:`repro.core.lssvm.LSSVC`;
everything else in this package is the machinery behind its ``fit``:

* :mod:`repro.core.kernels` — the kernel functions of §II-E and their
  blocked, memory-bounded evaluation.
* :mod:`repro.core.qmatrix` — the reduced LS-SVM system of Chu et al.
  (Eq. 13/14/16), in explicit and matrix-free form.
* :mod:`repro.core.cg` — the Conjugate Gradient solver (Shewchuk variant).
* :mod:`repro.core.precond` — CG preconditioners: Jacobi diagonal scaling
  and the randomized Nyström (randomly pivoted partial Cholesky) low-rank
  preconditioner.
* :mod:`repro.core.model` — the trained-model containers (full-support
  and compact feature-map) plus LIBSVM/compact model file serialization.
* :mod:`repro.core.solvers` — the solver-strategy layer: exact CG, the
  direct rank-r Nyström solve, and the random Fourier feature primal.
* :mod:`repro.core.lssvm` — the high-level classifier.
"""

from .cg import (
    BlockCGResult,
    CGCheckpoint,
    CGResult,
    conjugate_gradient,
    conjugate_gradient_block,
)
from .kernels import (
    kernel_diagonal,
    kernel_matrix,
    kernel_row,
    kernel_scalar,
    squared_row_norms,
)
from .precond import (
    JacobiPrecond,
    NystromPrecond,
    Preconditioner,
    default_nystrom_rank,
    make_preconditioner,
    rpcholesky,
)
from .estimator import ParamsMixin, clone
from .tile_pipeline import TileCache, TilePipeline
from .lssvm import LSSVC
from .model import FeatureMapModel, LSSVMModel
from .multiclass import OneVsAllLSSVC, OneVsOneLSSVC
from .qmatrix import ExplicitQMatrix, ImplicitQMatrix, build_reduced_system
from .regression import LSSVR
from .resilience import resilient_solve
from .solvers import (
    SOLVER_STRATEGIES,
    FourierFeatureMap,
    SolverInfo,
    default_solver_rank,
    fit_reduced_set,
    fit_rff_primal,
    sample_fourier_features,
    solve_nystrom,
)
from .sparse_approx import SparseLSSVC
from .weighted import WeightedLSSVC, hampel_weights

__all__ = [
    "CGResult",
    "BlockCGResult",
    "CGCheckpoint",
    "conjugate_gradient",
    "conjugate_gradient_block",
    "resilient_solve",
    "Preconditioner",
    "JacobiPrecond",
    "NystromPrecond",
    "make_preconditioner",
    "default_nystrom_rank",
    "rpcholesky",
    "TilePipeline",
    "TileCache",
    "squared_row_norms",
    "kernel_scalar",
    "kernel_row",
    "kernel_matrix",
    "kernel_diagonal",
    "LSSVC",
    "LSSVR",
    "LSSVMModel",
    "FeatureMapModel",
    "SOLVER_STRATEGIES",
    "SolverInfo",
    "FourierFeatureMap",
    "default_solver_rank",
    "fit_reduced_set",
    "fit_rff_primal",
    "sample_fourier_features",
    "solve_nystrom",
    "ParamsMixin",
    "clone",
    "OneVsAllLSSVC",
    "OneVsOneLSSVC",
    "WeightedLSSVC",
    "SparseLSSVC",
    "hampel_weights",
    "ExplicitQMatrix",
    "ImplicitQMatrix",
    "build_reduced_system",
]
