"""Least Squares Support Vector Regression (paper §V future work).

The paper's conclusion lists regression as a planned LIBSVM-parity
feature. The LS-SVM machinery delivers it almost for free: the saddle
system of Eq. 11 never uses the fact that the targets are +/-1 — with
real-valued targets it *is* kernel ridge regression with a bias term
(Saunders et al.'s dual ridge regression, the paper's reference [33]):

    [K + I/C   1] [alpha]   [y]
    [1^T       0] [b    ] = [0]

so the identical reduction (Eq. 13/14), the identical matrix-free CG solve
and the identical bias recovery apply. Prediction drops the sign:

    f(x) = sum_i alpha_i k(x_i, x) + b
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..exceptions import DataError, InvalidParameterError, NotFittedError
from ..parameter import Parameter, SolverConfig
from ..profiling import ComponentTimer
from ..telemetry import TrainingReport, build_report, fit_scope
from ..types import KernelType
from .cg import CGResult, conjugate_gradient
from .estimator import ParamsMixin, apply_config, warn_deprecated_flat_kwargs
from .incremental import IncrementalEngine
from .qmatrix import (
    EXPLICIT_LIMIT,
    ExplicitQMatrix,
    ImplicitQMatrix,
    recover_bias_and_alpha,
)
from .solvers import (
    SolverInfo,
    fit_rff_primal,
    resolve_solver,
    solve_nystrom,
)

__all__ = ["LSSVR"]

#: SolverConfig fields LSSVR exposes as constructor keywords.
_REG_SOLVER_FIELDS = ("solver", "solver_rank", "solver_seed", "polish_iters")


class LSSVR(ParamsMixin):
    """Least Squares Support Vector Regressor.

    Parameters match :class:`repro.core.lssvm.LSSVC` where they apply;
    ``C`` trades the fit against the flatness of the function exactly as in
    classification (it is the inverse ridge).

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> X = rng.uniform(-3, 3, size=(200, 1))
    >>> y = np.sin(X[:, 0])
    >>> reg = LSSVR(kernel="rbf", C=100.0, gamma=1.0).fit(X, y)
    >>> float(np.abs(reg.predict(X) - y).mean()) < 0.05
    True
    """

    def __init__(
        self,
        kernel: Union[str, int, KernelType] = "rbf",
        C: float = 1.0,
        *,
        gamma: Optional[float] = None,
        degree: int = 3,
        coef0: float = 0.0,
        epsilon: float = 1e-6,
        max_iter: Optional[int] = None,
        dtype=np.float64,
        implicit: Optional[bool] = None,
        solver: str = "cg",
        solver_rank: Optional[int] = None,
        solver_seed: Union[None, int, np.random.Generator] = 0,
        polish_iters: int = 0,
        config: Optional[SolverConfig] = None,
        warm_start: bool = False,
    ) -> None:
        self.kernel = kernel
        self.C = C
        self.gamma = gamma
        self.degree = degree
        self.coef0 = coef0
        self.epsilon = epsilon
        self.max_iter = max_iter
        self.dtype = dtype
        self.implicit = implicit
        self.solver = solver
        self.solver_rank = solver_rank
        self.solver_seed = solver_seed
        self.polish_iters = polish_iters
        self.config = config
        self.warm_start = warm_start
        warn_deprecated_flat_kwargs(self, (SolverConfig, config))
        self._sync_params()
        self.result_: Optional[CGResult] = None
        self.report_: Optional[TrainingReport] = None
        self.timings_ = ComponentTimer()
        self._qmat = None
        self._alpha: Optional[np.ndarray] = None
        self._bias = 0.0
        self._fmap = None
        self._train_targets: Optional[np.ndarray] = None

    def _sync_params(self) -> None:
        apply_config(
            self, getattr(self, "config", None), supported=_REG_SOLVER_FIELDS
        )
        self.warm_start = bool(getattr(self, "warm_start", False))
        # A parameter change invalidates an incremental continuation.
        self._engine_inc = None
        self.param = Parameter(
            kernel=self.kernel,
            cost=self.C,
            gamma=self.gamma,
            degree=self.degree,
            coef0=self.coef0,
            epsilon=self.epsilon,
            max_iter=self.max_iter,
            dtype=self.dtype,
        )
        self.solver = resolve_solver(self.solver)
        self.polish_iters = int(self.polish_iters)
        if self.polish_iters < 0:
            raise InvalidParameterError("polish_iters must be non-negative")
        if self.polish_iters and self.solver != "nystrom":
            raise InvalidParameterError(
                "polish_iters only applies to solver='nystrom'"
            )
        if self.solver == "rff" and self.param.kernel is not KernelType.RBF:
            raise InvalidParameterError(
                "solver='rff' requires the RBF kernel "
                f"(got {self.param.kernel})"
            )

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LSSVR":
        """Fit on real-valued targets ``y``."""
        y = np.asarray(y, dtype=self.param.dtype).ravel()
        X = np.asarray(X, dtype=self.param.dtype)
        if X.ndim != 2:
            raise DataError("training data must be 2-D")
        # Targets must vary, otherwise the reduced rhs is zero and the model
        # degenerates to the constant (still valid, but surprising).
        implicit = self.implicit
        if implicit is None:
            implicit = X.shape[0] > EXPLICIT_LIMIT
        self.timings_ = ComponentTimer()
        self._qmat = None
        self._fmap = None
        self._engine_inc = None
        warm_iterations = 0
        with fit_scope("LSSVR.fit", estimator="LSSVR") as ctx:
            with self.timings_.section("total"):
                if self.solver == "rff":
                    # The dual ridge system never appears: the primal
                    # normal equations accept real targets verbatim.
                    with self.timings_.section("cg"):
                        fmap, weights, bias, result, info = fit_rff_primal(
                            X,
                            y,
                            self.param,
                            rank=self.solver_rank,
                            rng=self.solver_seed,
                        )
                    self._fmap = fmap
                    alpha = weights
                else:
                    with self.timings_.section("assembly"), ctx.span("assembly"):
                        if implicit:
                            qmat = ImplicitQMatrix(
                                X, y, self.param, binary_labels=False
                            )
                        else:
                            qmat = ExplicitQMatrix(
                                X, y, self.param, binary_labels=False
                            )
                    with self.timings_.section("cg"):
                        if self.solver == "nystrom":
                            result, info = solve_nystrom(
                                qmat,
                                qmat.rhs(),
                                rank=self.solver_rank,
                                rng=self.solver_seed,
                                polish_iters=self.polish_iters,
                                epsilon=self.param.epsilon,
                            )
                        else:
                            info = SolverInfo()
                            rhs = qmat.rhs()
                            x0 = None
                            if self.warm_start and self._alpha is not None:
                                prev = np.asarray(self._alpha)
                                n = rhs.shape[0]
                                if prev.ndim == 1 and prev.shape[0] == n + 1:
                                    # Same-size refit: drop the recovered
                                    # eliminated entry.
                                    x0 = np.array(prev[:n], dtype=qmat.dtype)
                                elif prev.ndim == 1 and 0 < prev.shape[0] <= n:
                                    x0 = np.zeros(n, dtype=qmat.dtype)
                                    x0[: prev.shape[0]] = prev
                            result = conjugate_gradient(
                                qmat,
                                rhs,
                                epsilon=self.param.epsilon,
                                max_iter=self.param.max_iter,
                                x0=x0,
                            )
                            if x0 is not None:
                                warm_iterations = result.iterations
                    alpha, bias = recover_bias_and_alpha(qmat, result.x)
                    self._qmat = qmat
        self.report_ = build_report(
            ctx,
            estimator="LSSVR",
            backend="numpy",
            num_samples=X.shape[0],
            num_features=X.shape[1],
            timings=self.timings_,
            result=result,
            solver_strategy=info.strategy,
            solver_rank=info.rank,
            solver_setup_seconds=info.setup_seconds,
            warm_start_iterations=warm_iterations,
        )
        self.result_ = result
        self._alpha = alpha
        self._bias = bias
        # Keep the targets so partial_fit can continue from this fit.
        self._train_targets = y if self._fmap is None else None
        return self

    def partial_fit(self, X: np.ndarray, y: np.ndarray) -> "LSSVR":
        """Extend the training set by a chunk and refit incrementally.

        The regression twin of :meth:`repro.core.lssvm.LSSVC.partial_fit`:
        the accumulated kernel matrix grows by the new rows only and CG
        warm-starts from the previous multipliers. A zero-row chunk is a
        bit-exact no-op; a regular :meth:`fit` can be continued (one
        kernel bootstrap on the first chunk). Requires ``solver="cg"``.
        """
        if self.solver != "cg":
            raise InvalidParameterError(
                "partial_fit requires solver='cg' (the randomized direct "
                "solves have no warm-startable iteration)"
            )
        X = np.asarray(X, dtype=self.param.dtype)
        if X.ndim != 2:
            raise DataError("training data must be 2-D")
        if X.shape[0] == 0:
            if self._alpha is None:
                raise DataError("the first partial_fit chunk is empty")
            return self  # bit-exact no-op
        y = np.asarray(y, dtype=self.param.dtype).ravel()
        engine = self._engine_inc
        if engine is None:
            engine = IncrementalEngine(
                self.param,
                binary_labels=False,
            )
            if self.implicit is True:
                engine.explicit_limit = 0
            elif self.implicit is False:
                engine.explicit_limit = 2**62
            if self._alpha is not None:
                if self._qmat is None or self._train_targets is None:
                    raise InvalidParameterError(
                        "cannot continue incrementally from the previous fit "
                        "(compact rff models keep no appendable support set); "
                        "start from a fresh estimator"
                    )
                engine.seed(self._qmat.X, self._train_targets, self._alpha)
            self._engine_inc = engine
        self.timings_ = ComponentTimer()
        with fit_scope("LSSVR.partial_fit", estimator="LSSVR") as ctx:
            with self.timings_.section("total"):
                with self.timings_.section("refit"), ctx.span(
                    "refit", new_rows=X.shape[0]
                ):
                    res = engine.update(X, y)
        self._qmat = res.qmat
        self._alpha = res.alpha
        self._bias = float(res.bias)
        self._fmap = None
        self._train_targets = engine.y
        self.result_ = res.result
        self.report_ = build_report(
            ctx,
            estimator="LSSVR",
            backend="numpy",
            num_samples=engine.num_rows,
            num_features=engine.X.shape[1],
            timings=self.timings_,
            result=res.result,
            warm_start_iterations=res.warm_start_iterations,
        )
        return self

    def _require_fitted(self) -> None:
        if self._alpha is None:
            raise NotFittedError("LSSVR is not fitted yet; call fit() first")

    def predict(self, X: np.ndarray, *, tile_rows: int = 2048) -> np.ndarray:
        """Predicted function values for each row of ``X``."""
        self._require_fitted()
        from .kernels import kernel_matrix

        X = np.asarray(X, dtype=self.param.dtype)
        single = X.ndim == 1
        if single:
            X = X[None, :]
        if self._fmap is not None:
            if X.shape[1] != self._fmap.num_features:
                raise DataError(
                    f"test data has {X.shape[1]} features, model expects "
                    f"{self._fmap.num_features}"
                )
            out = self._fmap.transform(X) @ self._alpha + self._bias
            return out[0] if single else out
        if X.shape[1] != self._qmat.X.shape[1]:
            raise DataError(
                f"test data has {X.shape[1]} features, model expects "
                f"{self._qmat.X.shape[1]}"
            )
        kw = self._qmat.param.kernel_kwargs()
        out = np.empty(X.shape[0], dtype=self.param.dtype)
        for start in range(0, X.shape[0], tile_rows):
            rows = slice(start, min(start + tile_rows, X.shape[0]))
            K = kernel_matrix(X[rows], self._qmat.X, self._qmat.param.kernel, **kw)
            out[rows] = K @ self._alpha
        out += self._bias
        return out[0] if single else out

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Coefficient of determination R^2 (1 is perfect, 0 is the mean)."""
        self._require_fitted()
        y = np.asarray(y, dtype=self.param.dtype).ravel()
        pred = np.atleast_1d(self.predict(X))
        if pred.shape[0] != y.shape[0]:
            raise DataError("target vector length does not match data")
        ss_res = float(np.sum((y - pred) ** 2))
        ss_tot = float(np.sum((y - y.mean()) ** 2))
        if ss_tot == 0.0:
            return 1.0 if ss_res == 0.0 else 0.0
        return 1.0 - ss_res / ss_tot

    @property
    def iterations_(self) -> int:
        if self.result_ is None:
            raise NotFittedError("LSSVR is not fitted yet; call fit() first")
        return self.result_.iterations

    @property
    def alpha_(self) -> np.ndarray:
        self._require_fitted()
        return self._alpha

    @property
    def bias_(self) -> float:
        self._require_fitted()
        return self._bias
