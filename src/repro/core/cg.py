"""Conjugate Gradient solver (paper §III-B, Shewchuk's formulation).

The LS-SVM reduced system is symmetric positive definite, so plain CG
applies. The implementation follows Shewchuk's "An Introduction to the
Conjugate Gradient Method Without the Agonizing Pain":

* termination on the *relative residual* ``||r|| / ||b|| <= epsilon`` —
  this epsilon is the knob swept in the paper's Fig. 3;
* the recurrence residual drifts from the true residual in finite
  precision, so every ``recompute_interval`` iterations the residual is
  recomputed from scratch as ``b - A @ x`` (Shewchuk §B.2);
* optional preconditioning — an extension beyond the paper. The
  ``preconditioner`` argument accepts either the legacy diagonal vector
  (wrapped into :class:`repro.core.precond.JacobiPrecond`, with identical
  validation on the single-RHS and block paths) or any
  :class:`repro.core.precond.Preconditioner` — notably the randomized
  Nyström preconditioner that collapses iteration counts on
  ill-conditioned RBF systems.

The solver is deliberately operator-agnostic: anything exposing
``matvec(v)``/``shape``/``dtype`` works, which lets the same loop drive the
NumPy operators, the OpenMP thread-pool backend, and the simulated GPU
backends.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Callable, Dict, List, Optional, Protocol, Union

import numpy as np

from ..exceptions import (
    ConvergenceWarning,
    DeviceLostError,
    InvalidParameterError,
    TransientDeviceError,
)
from ..membudget import sample_peak_rss
from ..telemetry.context import current_context
from ..types import SolverStatus

__all__ = [
    "LinearOperatorLike",
    "CGResult",
    "BlockCGResult",
    "CGCheckpoint",
    "conjugate_gradient",
    "conjugate_gradient_block",
]

#: Accepted ``preconditioner`` argument types: ``None``, a diagonal vector
#: (legacy Jacobi path), or a :class:`repro.core.precond.Preconditioner`.
PrecondLike = Union[None, np.ndarray, "object"]


def _resolve_preconditioner(preconditioner: PrecondLike, n: int):
    """Normalize the ``preconditioner`` argument to a Preconditioner or None.

    A raw vector keeps its legacy meaning — the diagonal of ``A`` — and is
    wrapped into :class:`~repro.core.precond.JacobiPrecond`, which applies
    one shared positivity/finiteness validation for the single-RHS and
    block solvers (previously each path validated on its own).
    """
    if preconditioner is None:
        return None
    if hasattr(preconditioner, "apply") and not isinstance(
        preconditioner, (np.ndarray, list, tuple)
    ):
        if preconditioner.shape[0] != n:
            raise InvalidParameterError(
                f"preconditioner size {preconditioner.shape[0]} does not match system {n}"
            )
        return preconditioner
    from .precond import JacobiPrecond  # deferred: precond imports profiling

    diag = np.asarray(preconditioner, dtype=np.float64).ravel()
    if diag.shape[0] != n:
        raise InvalidParameterError("preconditioner length does not match system")
    return JacobiPrecond(diag)


class LinearOperatorLike(Protocol):
    """Minimal operator interface consumed by :func:`conjugate_gradient`."""

    shape: tuple
    dtype: np.dtype

    def matvec(self, v: np.ndarray) -> np.ndarray: ...


@dataclasses.dataclass
class CGResult:
    """Outcome of a CG solve.

    Attributes
    ----------
    x:
        Solution vector.
    iterations:
        Number of CG iterations performed (matvec count excluding residual
        recomputations).
    residual:
        Final relative residual ``||r|| / ||b||``.
    status:
        Termination reason (:class:`repro.types.SolverStatus`).
    residual_history:
        Relative residual after every iteration (index 0 = initial guess).
    """

    x: np.ndarray
    iterations: int
    residual: float
    status: SolverStatus
    residual_history: List[float]

    @property
    def converged(self) -> bool:
        return self.status is SolverStatus.CONVERGED


@dataclasses.dataclass
class CGCheckpoint:
    """Opaque snapshot of an in-flight CG solve.

    Taken every ``checkpoint_interval`` iterations by
    :func:`conjugate_gradient` / :func:`conjugate_gradient_block` and
    attached (as ``exc.checkpoint``) to any
    :class:`~repro.exceptions.DeviceLostError` or
    :class:`~repro.exceptions.TransientDeviceError` escaping the solve.
    Passing it back via the ``checkpoint`` argument resumes from the
    snapshot instead of iteration 0.

    The snapshot captures the *complete* loop-bottom recurrence state
    (iterate, residual, search direction(s), best-iterate tracking, stall
    counter, residual history), so a resumed solve replays exactly the
    arithmetic an undisturbed solve would have performed: against the same
    operator and preconditioner the results are bit-for-bit identical.

    Treat the contents as opaque — the ``state`` dict is solver-specific
    (``kind`` is ``"single"`` or ``"block"``) and a checkpoint from one
    solver cannot resume the other.
    """

    kind: str
    x: np.ndarray
    r: Optional[np.ndarray]
    p: Optional[np.ndarray]
    iteration: int
    residual_history: List[float]
    state: Dict[str, object]


def _as_operator(A: Union[np.ndarray, LinearOperatorLike]) -> LinearOperatorLike:
    if isinstance(A, np.ndarray):
        if A.ndim != 2 or A.shape[0] != A.shape[1]:
            raise InvalidParameterError(f"matrix must be square 2-D, got shape {A.shape}")

        class _DenseOp:
            shape = A.shape
            dtype = A.dtype

            @staticmethod
            def matvec(v: np.ndarray) -> np.ndarray:
                return A @ v

            @staticmethod
            def matvec_multi(V: np.ndarray) -> np.ndarray:
                return A @ V

        return _DenseOp()
    return A


def _matvec_multi(op: LinearOperatorLike, V: np.ndarray) -> np.ndarray:
    """``A @ V`` via the operator's batched path, or a column loop fallback."""
    fn = getattr(op, "matvec_multi", None)
    if fn is not None:
        return fn(V)
    return np.column_stack([op.matvec(V[:, j]) for j in range(V.shape[1])])


def conjugate_gradient(
    A: Union[np.ndarray, LinearOperatorLike],
    b: np.ndarray,
    *,
    epsilon: float = 1e-3,
    max_iter: Optional[int] = None,
    x0: Optional[np.ndarray] = None,
    recompute_interval: int = 50,
    preconditioner: PrecondLike = None,
    callback: Optional[Callable[[int, float], None]] = None,
    warn_on_no_convergence: bool = True,
    checkpoint_interval: Optional[int] = None,
    checkpoint: Optional[CGCheckpoint] = None,
) -> CGResult:
    """Solve ``A @ x = b`` for SPD ``A`` with (optionally preconditioned) CG.

    Parameters
    ----------
    A:
        SPD operator: a dense array or any object with ``matvec``.
    b:
        Right-hand side.
    epsilon:
        Relative residual termination threshold (paper default 1e-3).
    max_iter:
        Iteration cap; defaults to ``max(2 * n, 10)`` — twice the system
        size, because finite-precision CG routinely needs more than the
        exact-arithmetic bound of ``n`` steps (plus a floor of 10 so tiny
        systems are not cut off mid-convergence).
    x0:
        Initial guess (zeros by default — the paper's choice).
    recompute_interval:
        Recompute the residual from its definition every this many
        iterations to shed accumulated rounding drift.
    preconditioner:
        Optional. A vector of diagonal entries of ``A`` enables Jacobi
        preconditioning (``M = diag(A)``, the legacy path); any
        :class:`repro.core.precond.Preconditioner` instance (e.g.
        :class:`~repro.core.precond.NystromPrecond`) is applied as
        ``z = M^{-1} r``. Termination is still measured on the *true*
        relative residual, so epsilon keeps its paper meaning.
    callback:
        Invoked as ``callback(iteration, relative_residual)`` once per
        iteration — the profiling layer hooks in here.
    warn_on_no_convergence:
        Emit a :class:`ConvergenceWarning` when the iteration cap is hit.
    checkpoint_interval:
        Snapshot the full recurrence state into a :class:`CGCheckpoint`
        every this many iterations. The latest snapshot is attached to any
        :class:`~repro.exceptions.DeviceLostError` /
        :class:`~repro.exceptions.TransientDeviceError` the operator raises
        (as ``exc.checkpoint``), so the interrupted solve can resume.
    checkpoint:
        Resume from a previously captured snapshot instead of iteration 0
        (mutually exclusive with ``x0``). Iteration numbering, the residual
        history, and all recurrences continue exactly where the snapshot
        left off.
    """
    op = _as_operator(A)
    b = np.asarray(b, dtype=op.dtype).ravel()
    n = op.shape[0]
    if b.shape[0] != n:
        raise InvalidParameterError(
            f"rhs length {b.shape[0]} does not match operator size {n}"
        )
    if not (0.0 < epsilon < 1.0):
        raise InvalidParameterError(f"epsilon must lie in (0, 1), got {epsilon}")
    if recompute_interval < 1:
        raise InvalidParameterError("recompute_interval must be positive")
    if checkpoint_interval is not None and checkpoint_interval < 1:
        raise InvalidParameterError("checkpoint_interval must be positive")
    if checkpoint is not None:
        if checkpoint.kind != "single":
            raise InvalidParameterError(
                f"checkpoint of kind {checkpoint.kind!r} cannot resume the "
                "single-RHS solver"
            )
        if x0 is not None:
            raise InvalidParameterError("pass either checkpoint or x0, not both")
        if checkpoint.x.shape[0] != n:
            raise InvalidParameterError(
                f"checkpoint system size {checkpoint.x.shape[0]} does not "
                f"match operator size {n}"
            )
    if max_iter is None:
        max_iter = max(2 * n, 10)

    precond = _resolve_preconditioner(preconditioner, n)

    b_norm = float(np.linalg.norm(b))
    if b_norm == 0.0:
        return CGResult(
            x=np.zeros(n, dtype=op.dtype),
            iterations=0,
            residual=0.0,
            status=SolverStatus.CONVERGED,
            residual_history=[0.0],
        )

    # The latest snapshot; attached to device faults escaping matvec so the
    # caller (resilient_solve) can resume instead of restarting.
    last_ckpt = checkpoint

    def matvec(v: np.ndarray) -> np.ndarray:
        try:
            return op.matvec(v)
        except (DeviceLostError, TransientDeviceError) as exc:
            exc.checkpoint = last_ckpt
            raise

    if checkpoint is not None:
        x = np.asarray(checkpoint.x, dtype=op.dtype).copy()
        r = np.asarray(checkpoint.r, dtype=op.dtype).copy()
        d = np.asarray(checkpoint.p, dtype=op.dtype).copy()
        delta_new = float(checkpoint.state["delta_new"])
        best_res = float(checkpoint.state["best_res"])
        best_x = np.asarray(checkpoint.state["best_x"], dtype=op.dtype).copy()
        stall = int(checkpoint.state["stall"])
        history = list(checkpoint.residual_history)
        rel_res = float(history[-1])
        start_iteration = checkpoint.iteration
    else:
        x = (
            np.zeros(n, dtype=op.dtype)
            if x0 is None
            else np.asarray(x0, dtype=op.dtype).copy()
        )
        r = b - matvec(x) if x0 is not None else b.copy()
        z = precond.apply(r) if precond is not None else r
        d = z.copy()
        delta_new = float(r @ z)
        rel_res = float(np.linalg.norm(r)) / b_norm
        history = [rel_res]
        best_res = rel_res
        best_x = x.copy()
        stall = 0
        start_iteration = 0

    if rel_res <= epsilon:
        return CGResult(x, start_iteration, rel_res, SolverStatus.CONVERGED, history)

    def take_checkpoint(at_iteration: int) -> CGCheckpoint:
        return CGCheckpoint(
            kind="single",
            x=x.copy(),
            r=r.copy(),
            p=d.copy(),
            iteration=at_iteration,
            residual_history=list(history),
            state={
                "delta_new": delta_new,
                "best_res": best_res,
                "best_x": best_x.copy(),
                "stall": stall,
            },
        )

    if checkpoint_interval is not None:
        last_ckpt = take_checkpoint(start_iteration)

    status = SolverStatus.MAX_ITERATIONS
    iteration = start_iteration
    ctx = current_context()
    with ctx.span("cg_solve", kind="single", size=n, resumed=start_iteration):
        for iteration in range(start_iteration + 1, max_iter + 1):
            with ctx.span("iteration", i=iteration):
                q = matvec(d)
                dq = float(d @ q)
                if dq <= 0.0 or not np.isfinite(dq):
                    # Curvature lost: the operator is numerically not SPD
                    # along d.
                    status = SolverStatus.STAGNATED
                    iteration -= 1
                    break
                alpha = delta_new / dq
                x += alpha * d
                if iteration % recompute_interval == 0:
                    r = b - matvec(x)
                else:
                    r -= alpha * q
                z = precond.apply(r) if precond is not None else r
                delta_old = delta_new
                delta_new = float(r @ z)
                rel_res = float(np.linalg.norm(r)) / b_norm
                history.append(rel_res)
                if callback is not None:
                    callback(iteration, rel_res)
                if rel_res <= epsilon:
                    status = SolverStatus.CONVERGED
                    break
                if rel_res < best_res:
                    best_res = rel_res
                    best_x[:] = x
                    stall = 0
                elif (
                    not np.isfinite(rel_res)
                    or rel_res > 1e3 * best_res
                    or stall >= 50
                ):
                    # Finite-precision breakdown: epsilon sits below the
                    # attainable residual and the recurrences have started to
                    # diverge. Return the best iterate instead of amplifying
                    # rounding noise.
                    status = SolverStatus.STAGNATED
                    x = best_x
                    rel_res = best_res
                    break
                else:
                    stall += 1
                beta = delta_new / delta_old
                d = z + beta * d
                if (
                    checkpoint_interval is not None
                    and iteration % checkpoint_interval == 0
                ):
                    last_ckpt = take_checkpoint(iteration)
                    sample_peak_rss(ctx)

    if status is not SolverStatus.CONVERGED and warn_on_no_convergence:
        warnings.warn(
            f"CG stopped after {iteration} iterations with relative residual "
            f"{rel_res:.3e} > epsilon={epsilon:.3e}",
            ConvergenceWarning,
            stacklevel=2,
        )
    ctx.inc("cg_solves")
    ctx.inc("cg_iterations", iteration - start_iteration)
    return CGResult(x, iteration, rel_res, status, history)


@dataclasses.dataclass
class BlockCGResult:
    """Outcome of a block-CG solve of ``A @ X = B`` with ``k`` columns.

    Attributes
    ----------
    X:
        Solution block, shape ``(n, k)``.
    iterations:
        Block iterations performed; each costs *one* operator sweep
        (``matvec_multi``), not ``k`` separate matvecs.
    residuals:
        Final per-column relative residuals ``||r_j|| / ||b_j||``.
    status:
        Termination reason (worst column governs).
    residual_history:
        Maximum per-column relative residual after every iteration
        (index 0 = initial guess).
    """

    X: np.ndarray
    iterations: int
    residuals: np.ndarray
    status: SolverStatus
    residual_history: List[float]

    @property
    def converged(self) -> bool:
        return self.status is SolverStatus.CONVERGED

    @property
    def residual(self) -> float:
        """Worst (maximum) per-column relative residual."""
        return float(self.residuals.max()) if self.residuals.size else 0.0

    def column(self, j: int) -> CGResult:
        """Per-column view as a :class:`CGResult` (for per-machine reporting)."""
        return CGResult(
            x=self.X[:, j],
            iterations=self.iterations,
            residual=float(self.residuals[j]),
            status=self.status,
            residual_history=list(self.residual_history),
        )


def _block_solve(G: np.ndarray, RHS: np.ndarray) -> np.ndarray:
    """Solve the small ``k x k`` Gram system, falling back to least squares.

    The rQ recursion keeps the search block orthonormal, so its Gram matrix
    is well-conditioned in ordinary runs; the least-squares fallback covers
    the residual rank collapse of an exact invariant subspace without
    aborting the whole block.
    """
    try:
        out = np.linalg.solve(G, RHS)
        if np.all(np.isfinite(out)):
            return out
    except np.linalg.LinAlgError:
        pass
    return np.linalg.lstsq(G, RHS, rcond=None)[0]


def conjugate_gradient_block(
    A: Union[np.ndarray, LinearOperatorLike],
    B: np.ndarray,
    *,
    epsilon: float = 1e-3,
    max_iter: Optional[int] = None,
    X0: Optional[np.ndarray] = None,
    recompute_interval: int = 50,
    preconditioner: PrecondLike = None,
    callback: Optional[Callable[[int, float], None]] = None,
    warn_on_no_convergence: bool = True,
    checkpoint_interval: Optional[int] = None,
    checkpoint: Optional[CGCheckpoint] = None,
) -> BlockCGResult:
    """Solve ``A @ X = B`` for all ``k`` columns of ``B`` simultaneously.

    Block CG (O'Leary, *The block conjugate gradient algorithm and related
    methods*) carries all right-hand sides through one Krylov recursion:
    every iteration performs a single operator application ``A @ P`` on the
    whole direction block — for the tile-pipeline operators that is **one
    kernel-tile sweep shared by all k systems**, the multi-RHS amortization
    this solver exists for. As a bonus the block Krylov space is richer
    than any single-vector space, so the block solve typically needs *no
    more* (often fewer) iterations than the slowest individual solve.

    The recursion is Dubrulle's rQ variant (*Retooling the method of block
    conjugate gradients*): the residual block is carried in QR-factored
    form ``R = Q @ phi`` and the search block stays orthonormal, so the
    per-iteration Gram systems remain well-conditioned even when ``B`` is
    exactly rank-deficient. That matters here: the one-vs-all multi-class
    right-hand sides sum to the zero vector by construction (each row of
    the class-indicator matrix holds one ``+1`` and ``k-1`` ``-1``\\ s), a
    configuration on which the textbook recursion breaks down.

    A ``preconditioner`` (a diagonal vector or any
    :class:`repro.core.precond.Preconditioner`) is applied as the exact
    split transform ``(E^T A E) Y = E^T B`` with ``X = E Y`` and
    ``E E^T = M^{-1}``, which keeps the transformed system SPD so the rQ
    recursion runs unchanged. For the diagonal (Jacobi) case ``E`` is
    ``D^{-1/2}`` — the transform this solver always used — and the legacy
    vector argument is validated exactly like the single-RHS solver's
    (wrapped into :class:`~repro.core.precond.JacobiPrecond`). Convergence
    is still measured on the original, untransformed residuals.

    Parameters mirror :func:`conjugate_gradient`; ``B`` and ``X0`` are
    ``(n, k)`` blocks (a 1-D ``b`` is accepted and treated as ``k=1``).
    ``max_iter`` defaults to ``max(2 * n, 10)``, the same cap as the
    single-vector solver. Convergence requires *every* column's relative
    residual ``||r_j|| / ||b_j||`` to drop below ``epsilon``; zero columns
    of ``B`` are converged by definition.

    ``checkpoint_interval`` / ``checkpoint`` mirror
    :func:`conjugate_gradient`: the rQ recurrence state (iterate block,
    factored residual ``Qb @ phi``, search block, best-iterate tracking) is
    snapshotted into a :class:`CGCheckpoint` of kind ``"block"`` and
    attached to escaping device faults, so an interrupted block solve
    resumes mid-recursion.
    """
    op = _as_operator(A)
    B = np.asarray(B, dtype=op.dtype)
    squeeze = B.ndim == 1
    if squeeze:
        B = B[:, None]
    n = op.shape[0]
    if B.ndim != 2 or B.shape[0] != n:
        raise InvalidParameterError(
            f"rhs block of shape {B.shape} does not match operator size {n}"
        )
    k = B.shape[1]
    if k == 0:
        raise InvalidParameterError("rhs block has no columns")
    if not (0.0 < epsilon < 1.0):
        raise InvalidParameterError(f"epsilon must lie in (0, 1), got {epsilon}")
    if recompute_interval < 1:
        raise InvalidParameterError("recompute_interval must be positive")
    if checkpoint_interval is not None and checkpoint_interval < 1:
        raise InvalidParameterError("checkpoint_interval must be positive")
    if checkpoint is not None:
        if checkpoint.kind != "block":
            raise InvalidParameterError(
                f"checkpoint of kind {checkpoint.kind!r} cannot resume the "
                "block solver"
            )
        if X0 is not None:
            raise InvalidParameterError("pass either checkpoint or X0, not both")
        if checkpoint.x.shape != (n, k):
            raise InvalidParameterError(
                f"checkpoint block of shape {checkpoint.x.shape} does not "
                f"match system shape {(n, k)}"
            )
    if max_iter is None:
        max_iter = max(2 * n, 10)

    precond = _resolve_preconditioner(preconditioner, n)

    b_norms = np.linalg.norm(B, axis=0)
    # Zero columns have the zero solution; scale them by 1 so their (zero)
    # residual never divides by zero and they read as converged.
    scale = np.where(b_norms > 0.0, b_norms, 1.0)
    if np.all(b_norms == 0.0):
        return BlockCGResult(
            X=np.zeros((n, k), dtype=op.dtype),
            iterations=0,
            residuals=np.zeros(k),
            status=SolverStatus.CONVERGED,
            residual_history=[0.0],
        )

    # The latest snapshot; attached to device faults escaping the operator
    # sweep so the caller (resilient_solve) can resume instead of restarting.
    last_ckpt = checkpoint

    # Preconditioning as an exact split transform: the iteration runs on
    # E^T A E (SPD for any invertible E with E E^T = M^{-1}) with unknowns
    # E^{-1} X, which keeps the rQ recursion's plain inner products valid.
    def apply_op(V: np.ndarray) -> np.ndarray:
        try:
            AV = _matvec_multi(op, V if precond is None else precond.sqrt_apply(V))
        except (DeviceLostError, TransientDeviceError) as exc:
            exc.checkpoint = last_ckpt
            raise
        return AV if precond is None else precond.sqrt_apply_t(AV)

    Bt = B if precond is None else precond.sqrt_apply_t(B)
    if checkpoint is not None:
        Xt = np.asarray(checkpoint.x, dtype=op.dtype).copy()
        Qb = np.asarray(checkpoint.state["Qb"]).copy()
        phi = np.asarray(checkpoint.state["phi"]).copy()
        P = np.asarray(checkpoint.p).copy()
        best_res = float(checkpoint.state["best_res"])
        best_X = np.asarray(checkpoint.state["best_X"]).copy()
        best_rel = np.asarray(checkpoint.state["best_rel"]).copy()
        stall = int(checkpoint.state["stall"])
        history = list(checkpoint.residual_history)
        start_iteration = checkpoint.iteration
    elif X0 is None:
        Xt = np.zeros((n, k), dtype=op.dtype)
        R = Bt.copy()
        start_iteration = 0
    else:
        Xt = np.array(X0, dtype=op.dtype).reshape(n, k)
        if precond is not None:
            Xt = precond.sqrt_unapply(Xt)
        R = Bt - apply_op(Xt)
        start_iteration = 0

    def untransform(Xt_: np.ndarray) -> np.ndarray:
        if precond is None:
            return Xt_
        # The preconditioner computes in float64; hand back the operator's
        # working dtype so callers see the same types as the plain path.
        return precond.sqrt_apply(Xt_).astype(op.dtype, copy=False)

    if checkpoint is None:
        # rQ representation: R = Qb @ phi with Qb orthonormal. The reduced QR
        # caps the block width at min(n, k); column norms of the small factor
        # phi are exactly the residual column norms.
        Qb, phi = np.linalg.qr(R)

    def column_residuals() -> np.ndarray:
        if precond is None:
            return np.linalg.norm(phi, axis=0) / scale
        # Convergence is judged on the original-space residual E^{-T} Qb phi.
        return np.linalg.norm(precond.sqrt_unapply_t(Qb @ phi), axis=0) / scale

    rel = column_residuals()
    if checkpoint is None:
        history = [float(rel.max())]

    if np.all(rel <= epsilon):
        return BlockCGResult(
            untransform(Xt), start_iteration, rel, SolverStatus.CONVERGED, history
        )

    if checkpoint is None:
        P = Qb.copy()
        best_res = float(rel.max())
        best_X = Xt.copy()
        best_rel = rel.copy()
        stall = 0
    eye = np.eye(P.shape[1], dtype=op.dtype)

    def take_checkpoint(at_iteration: int) -> CGCheckpoint:
        return CGCheckpoint(
            kind="block",
            x=Xt.copy(),
            r=None,
            p=P.copy(),
            iteration=at_iteration,
            residual_history=list(history),
            state={
                "Qb": Qb.copy(),
                "phi": phi.copy(),
                "best_res": best_res,
                "best_X": best_X.copy(),
                "best_rel": best_rel.copy(),
                "stall": stall,
            },
        )

    if checkpoint_interval is not None:
        last_ckpt = take_checkpoint(start_iteration)

    status = SolverStatus.MAX_ITERATIONS
    iteration = start_iteration
    ctx = current_context()
    with ctx.span(
        "cg_solve", kind="block", size=n, columns=k, resumed=start_iteration
    ):
        for iteration in range(start_iteration + 1, max_iter + 1):
            with ctx.span("iteration", i=iteration):
                T = apply_op(P)  # ONE sweep for all k columns
                M = P.T @ T
                diag = np.einsum("ii->i", M)
                if not np.all(np.isfinite(M)) or np.all(diag <= 0.0):
                    # Curvature lost on every direction: numerically not SPD.
                    status = SolverStatus.STAGNATED
                    iteration -= 1
                    break
                Minv = _block_solve(M, eye)
                Xt += P @ (Minv @ phi)
                if iteration % recompute_interval == 0:
                    # Re-sync the factored residual with the true one and
                    # restart the direction block (plain-CG restarts are safe,
                    # just slower).
                    Qb, phi = np.linalg.qr(Bt - apply_op(Xt))
                    P = Qb.copy()
                else:
                    Qb, zeta = np.linalg.qr(Qb - T @ Minv)
                    phi = zeta @ phi
                    P = Qb + P @ zeta.T
                rel = column_residuals()
                worst = float(rel.max())
                history.append(worst)
                if callback is not None:
                    callback(iteration, worst)
                if np.all(rel <= epsilon):
                    status = SolverStatus.CONVERGED
                    break
                if worst < best_res:
                    best_res = worst
                    best_X[:] = Xt
                    best_rel[:] = rel
                    stall = 0
                elif not np.isfinite(worst) or worst > 1e3 * best_res or stall >= 50:
                    # Finite-precision breakdown; return the best block iterate.
                    status = SolverStatus.STAGNATED
                    Xt = best_X
                    rel = best_rel
                    break
                else:
                    stall += 1
                if (
                    checkpoint_interval is not None
                    and iteration % checkpoint_interval == 0
                ):
                    last_ckpt = take_checkpoint(iteration)
                    sample_peak_rss(ctx)

    if status is not SolverStatus.CONVERGED and warn_on_no_convergence:
        warnings.warn(
            f"block CG stopped after {iteration} iterations with worst relative "
            f"residual {float(rel.max()):.3e} > epsilon={epsilon:.3e}",
            ConvergenceWarning,
            stacklevel=2,
        )
    ctx.inc("cg_solves")
    ctx.inc("cg_iterations", iteration - start_iteration)
    return BlockCGResult(untransform(Xt), iteration, rel, status, history)
