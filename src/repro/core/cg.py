"""Conjugate Gradient solver (paper §III-B, Shewchuk's formulation).

The LS-SVM reduced system is symmetric positive definite, so plain CG
applies. The implementation follows Shewchuk's "An Introduction to the
Conjugate Gradient Method Without the Agonizing Pain":

* termination on the *relative residual* ``||r|| / ||b|| <= epsilon`` —
  this epsilon is the knob swept in the paper's Fig. 3;
* the recurrence residual drifts from the true residual in finite
  precision, so every ``recompute_interval`` iterations the residual is
  recomputed from scratch as ``b - A @ x`` (Shewchuk §B.2);
* an optional diagonal (Jacobi) preconditioner — an extension beyond the
  paper, exercised by the ablation benchmarks.

The solver is deliberately operator-agnostic: anything exposing
``matvec(v)``/``shape``/``dtype`` works, which lets the same loop drive the
NumPy operators, the OpenMP thread-pool backend, and the simulated GPU
backends.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Callable, List, Optional, Protocol, Union

import numpy as np

from ..exceptions import ConvergenceWarning, InvalidParameterError
from ..types import SolverStatus

__all__ = ["LinearOperatorLike", "CGResult", "conjugate_gradient"]


class LinearOperatorLike(Protocol):
    """Minimal operator interface consumed by :func:`conjugate_gradient`."""

    shape: tuple
    dtype: np.dtype

    def matvec(self, v: np.ndarray) -> np.ndarray: ...


@dataclasses.dataclass
class CGResult:
    """Outcome of a CG solve.

    Attributes
    ----------
    x:
        Solution vector.
    iterations:
        Number of CG iterations performed (matvec count excluding residual
        recomputations).
    residual:
        Final relative residual ``||r|| / ||b||``.
    status:
        Termination reason (:class:`repro.types.SolverStatus`).
    residual_history:
        Relative residual after every iteration (index 0 = initial guess).
    """

    x: np.ndarray
    iterations: int
    residual: float
    status: SolverStatus
    residual_history: List[float]

    @property
    def converged(self) -> bool:
        return self.status is SolverStatus.CONVERGED


def _as_operator(A: Union[np.ndarray, LinearOperatorLike]) -> LinearOperatorLike:
    if isinstance(A, np.ndarray):
        if A.ndim != 2 or A.shape[0] != A.shape[1]:
            raise InvalidParameterError(f"matrix must be square 2-D, got shape {A.shape}")

        class _DenseOp:
            shape = A.shape
            dtype = A.dtype

            @staticmethod
            def matvec(v: np.ndarray) -> np.ndarray:
                return A @ v

        return _DenseOp()
    return A


def conjugate_gradient(
    A: Union[np.ndarray, LinearOperatorLike],
    b: np.ndarray,
    *,
    epsilon: float = 1e-3,
    max_iter: Optional[int] = None,
    x0: Optional[np.ndarray] = None,
    recompute_interval: int = 50,
    preconditioner: Optional[np.ndarray] = None,
    callback: Optional[Callable[[int, float], None]] = None,
    warn_on_no_convergence: bool = True,
) -> CGResult:
    """Solve ``A @ x = b`` for SPD ``A`` with (optionally preconditioned) CG.

    Parameters
    ----------
    A:
        SPD operator: a dense array or any object with ``matvec``.
    b:
        Right-hand side.
    epsilon:
        Relative residual termination threshold (paper default 1e-3).
    max_iter:
        Iteration cap; defaults to the system size (exact-arithmetic CG
        terminates in at most ``n`` steps).
    x0:
        Initial guess (zeros by default — the paper's choice).
    recompute_interval:
        Recompute the residual from its definition every this many
        iterations to shed accumulated rounding drift.
    preconditioner:
        Optional vector of diagonal entries of ``A``; enables Jacobi
        preconditioning (``M = diag(A)``).
    callback:
        Invoked as ``callback(iteration, relative_residual)`` once per
        iteration — the profiling layer hooks in here.
    warn_on_no_convergence:
        Emit a :class:`ConvergenceWarning` when the iteration cap is hit.
    """
    op = _as_operator(A)
    b = np.asarray(b, dtype=op.dtype).ravel()
    n = op.shape[0]
    if b.shape[0] != n:
        raise InvalidParameterError(
            f"rhs length {b.shape[0]} does not match operator size {n}"
        )
    if not (0.0 < epsilon < 1.0):
        raise InvalidParameterError(f"epsilon must lie in (0, 1), got {epsilon}")
    if recompute_interval < 1:
        raise InvalidParameterError("recompute_interval must be positive")
    if max_iter is None:
        max_iter = max(2 * n, 10)

    inv_diag: Optional[np.ndarray] = None
    if preconditioner is not None:
        inv_diag = np.asarray(preconditioner, dtype=op.dtype).ravel()
        if inv_diag.shape[0] != n:
            raise InvalidParameterError("preconditioner length does not match system")
        if np.any(inv_diag <= 0):
            raise InvalidParameterError(
                "Jacobi preconditioner requires strictly positive diagonal entries"
            )
        inv_diag = 1.0 / inv_diag

    x = np.zeros(n, dtype=op.dtype) if x0 is None else np.asarray(x0, dtype=op.dtype).copy()
    b_norm = float(np.linalg.norm(b))
    if b_norm == 0.0:
        return CGResult(
            x=np.zeros(n, dtype=op.dtype),
            iterations=0,
            residual=0.0,
            status=SolverStatus.CONVERGED,
            residual_history=[0.0],
        )

    r = b - op.matvec(x) if x0 is not None else b.copy()
    z = inv_diag * r if inv_diag is not None else r
    d = z.copy()
    delta_new = float(r @ z)
    rel_res = float(np.linalg.norm(r)) / b_norm
    history = [rel_res]

    if rel_res <= epsilon:
        return CGResult(x, 0, rel_res, SolverStatus.CONVERGED, history)

    status = SolverStatus.MAX_ITERATIONS
    iteration = 0
    best_res = rel_res
    best_x = x.copy()
    stall = 0
    for iteration in range(1, max_iter + 1):
        q = op.matvec(d)
        dq = float(d @ q)
        if dq <= 0.0 or not np.isfinite(dq):
            # Curvature lost: the operator is numerically not SPD along d.
            status = SolverStatus.STAGNATED
            iteration -= 1
            break
        alpha = delta_new / dq
        x += alpha * d
        if iteration % recompute_interval == 0:
            r = b - op.matvec(x)
        else:
            r -= alpha * q
        z = inv_diag * r if inv_diag is not None else r
        delta_old = delta_new
        delta_new = float(r @ z)
        rel_res = float(np.linalg.norm(r)) / b_norm
        history.append(rel_res)
        if callback is not None:
            callback(iteration, rel_res)
        if rel_res <= epsilon:
            status = SolverStatus.CONVERGED
            break
        if rel_res < best_res:
            best_res = rel_res
            best_x[:] = x
            stall = 0
        elif not np.isfinite(rel_res) or rel_res > 1e3 * best_res or stall >= 50:
            # Finite-precision breakdown: epsilon sits below the attainable
            # residual and the recurrences have started to diverge. Return
            # the best iterate instead of amplifying rounding noise.
            status = SolverStatus.STAGNATED
            x = best_x
            rel_res = best_res
            break
        else:
            stall += 1
        beta = delta_new / delta_old
        d = z + beta * d

    if status is not SolverStatus.CONVERGED and warn_on_no_convergence:
        warnings.warn(
            f"CG stopped after {iteration} iterations with relative residual "
            f"{rel_res:.3e} > epsilon={epsilon:.3e}",
            ConvergenceWarning,
            stacklevel=2,
        )
    return CGResult(x, iteration, rel_res, status, history)
