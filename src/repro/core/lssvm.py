"""High-level LS-SVM classifier (the Python face of ``plssvm::csvm``).

:class:`LSSVC` is a scikit-learn-style binary classifier:

>>> from repro import LSSVC
>>> clf = LSSVC(kernel="rbf", C=10.0).fit(X_train, y_train)
>>> accuracy = clf.score(X_test, y_test)

Training follows the four steps of §III: the data is (1) already read,
(2) handed to the selected backend (which converts it into its SoA device
layout — the ``transform`` component), (3) the reduced system is solved by
CG (``cg``), and (4) the model can be written via ``save()`` (``write``).
All steps are timed through :class:`repro.profiling.ComponentTimer`.

The ``backend`` argument selects who executes the implicit matrix-vector
products: ``None`` keeps the plain NumPy reference path; a name or
:class:`repro.types.BackendType` routes through the backend framework
(OpenMP thread pool, or the simulated CUDA/OpenCL/SYCL devices).
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from ..exceptions import DataError, InvalidParameterError, NotFittedError
from ..membudget import memory_budget, reset_peak_rss, sample_peak_rss
from ..parameter import Parameter, ResourceConfig, SolverConfig
from ..profiling import ComponentTimer
from ..telemetry import TrainingReport, build_report, fit_scope
from ..types import BackendType, KernelType, TargetPlatform
from .cg import CGResult, conjugate_gradient
from .estimator import ParamsMixin, apply_config, warn_deprecated_flat_kwargs
from .incremental import IncrementalEngine
from .model import FeatureMapModel, LSSVMModel
from .precond import make_preconditioner
from .qmatrix import QMatrixBase, build_reduced_system, recover_bias_and_alpha
from .resilience import resilient_solve
from .solvers import (
    SolverInfo,
    fit_rff_primal,
    resolve_solver,
    solve_nystrom,
)

__all__ = ["LSSVC", "encode_labels", "decode_labels"]


def encode_labels(y: np.ndarray) -> Tuple[np.ndarray, Tuple[float, float]]:
    """Map a two-class label vector onto internal {-1, +1} labels.

    Following LIBSVM, the first label encountered in the file/array becomes
    the internal ``+1`` class. Returns ``(encoded, (positive, negative))``.
    """
    y = np.asarray(y).ravel()
    if y.size == 0:
        raise DataError("label vector is empty")
    classes = []
    for value in y:
        v = float(value)
        if v not in classes:
            classes.append(v)
        if len(classes) > 2:
            break
    if len(classes) != 2:
        raise DataError(
            f"binary classification requires exactly two classes, got {len(classes)}"
        )
    pos, neg = classes[0], classes[1]
    encoded = np.where(y == pos, 1.0, -1.0)
    return encoded, (pos, neg)


def decode_labels(y_internal: np.ndarray, labels: Tuple[float, float]) -> np.ndarray:
    """Map internal {-1, +1} predictions back to the original labels."""
    pos, neg = labels
    return np.where(np.asarray(y_internal) >= 0.0, pos, neg)


class LSSVC(ParamsMixin):
    """Least Squares Support Vector Classifier.

    Parameters
    ----------
    kernel:
        ``"linear"`` / ``"polynomial"`` / ``"rbf"`` (or ``KernelType`` /
        LIBSVM integer code). A ``"sigmoid"`` extension is also available.
    C:
        Regularization weight (``-c`` in LIBSVM terms); larger values fit
        the training data harder.
    gamma, degree, coef0:
        Kernel coefficients; ``gamma=None`` defaults to ``1/num_features``.
    epsilon:
        CG relative-residual termination criterion (paper default 1e-3).
    max_iter:
        CG iteration cap (default: ``max(2 * n, 10)`` for system size
        ``n``; see :func:`repro.core.cg.conjugate_gradient`).
    backend:
        ``None`` for the plain NumPy path, otherwise a backend name /
        :class:`BackendType` / ready-made backend instance. ``"automatic"``
        picks the best available backend for ``target``.
    target:
        Target platform for backend resolution (``"cpu"``, ``"gpu_nvidia"``,
        ...).
    n_devices:
        Number of (simulated) devices for multi-GPU execution of the linear
        kernel (§III-C5).
    dtype:
        Working precision, ``float64`` (default) or ``float32``.
    implicit:
        Force the matrix-free (``True``) or explicit (``False``) reduced
        system on the NumPy path; ``None`` selects by problem size.
    solver:
        Solver strategy: ``"cg"`` (exact, the default), ``"nystrom"``
        (direct rank-``r`` Woodbury solve of the RPCholesky-factored
        reduced system — O(m·r) training, no outer CG), or ``"rff"``
        (random Fourier feature primal for the RBF kernel — O(m·r)
        training *and* a compact O(r) model; see
        :mod:`repro.core.solvers`).
    solver_rank:
        Rank ``r`` of the randomized strategies; ``None`` picks
        :func:`repro.core.solvers.default_solver_rank` (~``4 sqrt(m)``).
    solver_seed:
        Single seed driving *all* of a randomized fit's sampling
        (RPCholesky pivots / RFF frequencies) — equal seeds give
        bit-identical fits.
    polish_iters:
        ``solver="nystrom"`` only: run this many warm-started exact-CG
        iterations from the direct solution (0 = pure direct solve).
    precondition:
        CG preconditioner: ``None`` (plain CG), ``"jacobi"`` (diagonal
        scaling), ``"nystrom"`` (randomized low-rank kernel approximation
        via randomly pivoted partial Cholesky — collapses iteration counts
        on ill-conditioned RBF systems), or a ready-made
        :class:`repro.core.precond.Preconditioner` instance.
    precond_rank:
        Rank of the Nyström approximation; ``None`` picks
        :func:`repro.core.precond.default_nystrom_rank` (~``2 sqrt(m)``).
    precond_rng:
        Seed / generator for the randomized pivot sampling (default 0 for
        reproducible fits).
    jacobi:
        Deprecated alias for ``precondition="jacobi"`` (kept for
        back-compat with the ablation benchmarks).
    sparse:
        Run the CG matvecs on a CSR representation of the data — the
        paper's "sparse data structures for the CG solver" future-work
        item, delivered for the linear kernel. Requires ``backend=None``.
    solver_threads:
        Worker threads for the kernel-tile sweeps of the implicit matvec
        (and the OpenMP backend's pool when ``backend="openmp"``);
        ``None`` resolves like an OpenMP runtime.
    tile_cache_mb:
        Byte budget (MiB) of the cross-iteration kernel-tile cache used by
        the matrix-free non-linear path; ``0`` disables it, ``None`` keeps
        the default (:data:`repro.core.tile_pipeline.DEFAULT_TILE_CACHE_MB`).
    compute_dtype:
        Mixed precision: evaluate and cache kernel tiles in this dtype
        (``float32`` halves tile-cache bytes and bandwidth) while the CG
        recursion, reductions, and termination criterion stay in ``dtype``.
        ``None`` keeps tiles in ``dtype``. Only the matrix-free non-linear
        path has tiles; other paths ignore it.
    fault_plan:
        Optional :class:`repro.simgpu.FaultPlan` injected into the
        simulated devices (requires a device backend). Training then runs
        through :func:`repro.core.resilience.resilient_solve`: transient
        faults are retried with backoff, lost devices trigger feature-split
        redistribution over the survivors, and the CG solve resumes from
        its last checkpoint.
    checkpoint_interval:
        CG checkpoint cadence for the resilient path; ``None`` uses
        :data:`repro.core.resilience.DEFAULT_CHECKPOINT_INTERVAL` when a
        fault plan is active. Setting it without a fault plan also routes
        the solve through the resilient driver (checkpoints are taken, but
        nothing faults).
    max_retries:
        Transient-fault retry budget of the resilient driver (see
        :func:`repro.core.resilience.resilient_solve`).
    memory_budget_mb:
        Hard training-memory budget in MiB. Activates the budget for the
        duration of :meth:`fit`: the explicit reduced system refuses to
        materialize past it, operator selection turns matrix-free, and
        chunked row sources size their streaming blocks against it. The
        realized peak RSS lands in ``report_.peak_rss_bytes``.
    shard_rows:
        Split the reduced system into this many sample row-shards and run
        CG matvecs shard-by-shard through the out-of-core operator
        (:class:`repro.core.rowsharded.RowShardedQMatrix`) — partial
        products are combined by deterministic allreduce. ``X`` may then
        be a row source (e.g. :class:`repro.io.ChunkedDataset`) so dense
        data never enters memory. Requires ``backend=None``.
    config:
        A :class:`repro.parameter.SolverConfig` grouping the solver
        strategy knobs (``solver`` / ``solver_rank`` / ``solver_seed`` /
        ``polish_iters`` / ``precondition`` / ``precond_rank`` /
        ``precond_rng``). The config is authoritative: its fields
        overwrite the flat keywords of the same name on every
        ``_sync_params`` — to change one grouped knob on a config-built
        estimator, pass a replaced config
        (``set_params(config=dataclasses.replace(cfg, ...))``) rather
        than the flat keyword. The flat spellings still work without a
        config but emit a ``DeprecationWarning``.
    resources:
        A :class:`repro.parameter.ResourceConfig` grouping the execution
        resource knobs (``solver_threads`` / ``tile_cache_mb`` /
        ``compute_dtype`` / ``fault_plan`` / ``checkpoint_interval`` /
        ``max_retries`` / ``memory_budget_mb`` / ``shard_rows``), with
        the same authoritative-overlay semantics as ``config``.
    warm_start:
        When ``True``, a repeated :meth:`fit` on the exact-CG path
        starts the solve from the previous model's multipliers (padded
        with zeros for any new rows) instead of from zero. The realized
        warm iterations land in
        ``report_.solver["warm_start_iterations"]``.
    """

    def __init__(
        self,
        kernel: Union[str, int, KernelType] = "linear",
        C: float = 1.0,
        *,
        gamma: Optional[float] = None,
        degree: int = 3,
        coef0: float = 0.0,
        epsilon: float = 1e-3,
        max_iter: Optional[int] = None,
        backend: Union[None, str, BackendType, object] = None,
        target: Union[str, TargetPlatform] = TargetPlatform.AUTOMATIC,
        n_devices: int = 1,
        dtype=np.float64,
        implicit: Optional[bool] = None,
        solver: str = "cg",
        solver_rank: Optional[int] = None,
        solver_seed: Union[None, int, np.random.Generator] = 0,
        polish_iters: int = 0,
        precondition: Union[None, str, object] = None,
        precond_rank: Optional[int] = None,
        precond_rng: Union[None, int, np.random.Generator] = 0,
        jacobi: bool = False,
        sparse: bool = False,
        solver_threads: Optional[int] = None,
        tile_cache_mb: Optional[float] = None,
        compute_dtype=None,
        fault_plan=None,
        checkpoint_interval: Optional[int] = None,
        max_retries: int = 3,
        memory_budget_mb: Optional[float] = None,
        shard_rows: Optional[int] = None,
        config: Optional[SolverConfig] = None,
        resources: Optional[ResourceConfig] = None,
        warm_start: bool = False,
    ) -> None:
        # Every constructor argument lands under its own attribute name
        # (the ParamsMixin/get_params contract); derived state is built in
        # _sync_params so set_params revalidates exactly like __init__.
        self.kernel = kernel
        self.C = C
        self.gamma = gamma
        self.degree = degree
        self.coef0 = coef0
        self.epsilon = epsilon
        self.max_iter = max_iter
        self.dtype = dtype
        self.backend = backend
        self.target = target
        self.n_devices = n_devices
        self.implicit = implicit
        self.solver = solver
        self.solver_rank = solver_rank
        self.solver_seed = solver_seed
        self.polish_iters = polish_iters
        self.precondition = precondition
        self.precond_rank = precond_rank
        self.precond_rng = precond_rng
        self.jacobi = jacobi
        self.sparse = sparse
        self.solver_threads = solver_threads
        self.tile_cache_mb = tile_cache_mb
        self.compute_dtype = compute_dtype
        self.fault_plan = fault_plan
        self.checkpoint_interval = checkpoint_interval
        self.max_retries = max_retries
        self.memory_budget_mb = memory_budget_mb
        self.shard_rows = shard_rows
        self.config = config
        self.resources = resources
        self.warm_start = warm_start
        # Deprecation check first, against the raw flat values — after
        # _sync_params the config overlay has rewritten them.
        warn_deprecated_flat_kwargs(
            self, (SolverConfig, config), (ResourceConfig, resources)
        )
        self._sync_params()
        self.model_: Union[None, LSSVMModel, FeatureMapModel] = None
        self.result_: Optional[CGResult] = None
        self.report_: Optional[TrainingReport] = None
        self.timings_: ComponentTimer = ComponentTimer()
        self._train_targets: Optional[np.ndarray] = None

    def _sync_params(self) -> None:
        """Validate parameters and rebuild derived state.

        Called from ``__init__`` and after every :meth:`set_params`, so a
        parameter update invalidates the cached backend instance and runs
        the same cross-parameter checks as construction.
        """
        # The grouped configs are authoritative over the flat attributes
        # (running here keeps set_params(config=...) effective too).
        apply_config(self, getattr(self, "config", None))
        apply_config(self, getattr(self, "resources", None))
        self.warm_start = bool(getattr(self, "warm_start", False))
        self.param = Parameter(
            kernel=self.kernel,
            cost=self.C,
            gamma=self.gamma,
            degree=self.degree,
            coef0=self.coef0,
            epsilon=self.epsilon,
            max_iter=self.max_iter,
            dtype=self.dtype,
        )
        self.target = TargetPlatform.from_name(self.target)
        if self.n_devices < 1:
            raise DataError("n_devices must be positive")
        self.n_devices = int(self.n_devices)
        if (
            self.jacobi
            and self.precondition is not None
            and self.precondition != "jacobi"
        ):
            raise DataError(
                f"jacobi=True conflicts with precondition={self.precondition!r}; "
                "drop the legacy flag"
            )
        if self.jacobi and self.precondition is None:
            self.precondition = "jacobi"
        self.sparse = bool(self.sparse)
        if self.checkpoint_interval is not None and self.checkpoint_interval < 1:
            raise InvalidParameterError("checkpoint_interval must be positive")
        if self.max_retries < 0:
            raise InvalidParameterError("max_retries must be >= 0")
        self.max_retries = int(self.max_retries)
        if self.fault_plan is not None:
            is_host = self.backend is None or (
                isinstance(self.backend, (str, BackendType))
                and BackendType.from_name(self.backend) is BackendType.OPENMP
            )
            if is_host:
                raise InvalidParameterError(
                    "fault_plan requires a device backend (cuda/opencl/sycl); "
                    "the host paths have no devices to fault"
                )
        if self.sparse and self.backend is not None:
            raise DataError("sparse CG runs on the NumPy path; use backend=None")
        self.solver = resolve_solver(self.solver)
        if self.polish_iters < 0:
            raise InvalidParameterError("polish_iters must be >= 0")
        self.polish_iters = int(self.polish_iters)
        if self.solver_rank is not None and self.solver_rank < 1:
            raise InvalidParameterError("solver_rank must be positive")
        if self.solver != "cg":
            if self.fault_plan is not None or self.checkpoint_interval is not None:
                raise InvalidParameterError(
                    "fault_plan/checkpoint_interval require the resilient CG "
                    f"driver; solver={self.solver!r} is a direct randomized solve"
                )
            if self.precondition is not None or self.jacobi:
                raise InvalidParameterError(
                    f"precondition applies to solver='cg' only; solver="
                    f"{self.solver!r} has no outer CG (use polish_iters for "
                    "refinement)"
                )
            if self.sparse:
                raise InvalidParameterError(
                    "sparse CG and the randomized solvers are exclusive paths"
                )
        if self.polish_iters and self.solver != "nystrom":
            raise InvalidParameterError(
                "polish_iters refines the nystrom direct solve; it does not "
                f"apply to solver={self.solver!r}"
            )
        if self.solver == "rff":
            if self.param.kernel is not KernelType.RBF:
                raise InvalidParameterError(
                    "solver='rff' maps the RBF kernel only "
                    f"(got kernel={self.param.kernel})"
                )
            if self.backend is not None:
                raise InvalidParameterError(
                    "solver='rff' is a host-side primal solve; use backend=None"
                )
        if self.memory_budget_mb is not None and self.memory_budget_mb <= 0:
            raise InvalidParameterError(
                f"memory_budget_mb must be positive, got {self.memory_budget_mb}"
            )
        if self.shard_rows is not None:
            if self.shard_rows < 1:
                raise InvalidParameterError(
                    f"shard_rows must be positive, got {self.shard_rows}"
                )
            self.shard_rows = int(self.shard_rows)
            if self.backend is not None:
                raise InvalidParameterError(
                    "shard_rows runs the row-sharded NumPy operator; "
                    "use backend=None"
                )
            if self.sparse:
                raise InvalidParameterError(
                    "shard_rows and the sparse CG path are exclusive"
                )
        self._backend_instance = None
        # Any hyper-parameter change invalidates an in-flight incremental
        # continuation: the next partial_fit starts a fresh engine.
        self._engine = None

    # -- backend plumbing ---------------------------------------------------

    def _resolve_backend(self):
        """Instantiate the backend lazily (keeps core importable standalone)."""
        if self.backend is None:
            return None
        if self._backend_instance is not None:
            return self._backend_instance
        from ..backends import create_backend  # deferred: backends import core

        if isinstance(self.backend, (str, BackendType)):
            kwargs = {}
            if BackendType.from_name(self.backend) is BackendType.OPENMP:
                # The host backend shares the solver's threading/cache/precision knobs.
                if self.solver_threads is not None:
                    kwargs["num_threads"] = self.solver_threads
                if self.tile_cache_mb is not None:
                    kwargs["tile_cache_mb"] = self.tile_cache_mb
                if self.compute_dtype is not None:
                    kwargs["compute_dtype"] = self.compute_dtype
            elif self.fault_plan is not None:
                kwargs["fault_plan"] = self.fault_plan
            self._backend_instance = create_backend(
                self.backend, target=self.target, n_devices=self.n_devices, **kwargs
            )
        else:
            self._backend_instance = self.backend
        return self._backend_instance

    def _build_operator(self, X: np.ndarray, y: np.ndarray) -> Tuple[QMatrixBase, np.ndarray]:
        backend = self._resolve_backend()
        if backend is None:
            if self.sparse:
                from ..sparse.qmatrix import SparseImplicitQMatrix

                qmat: QMatrixBase = SparseImplicitQMatrix(X, y, self.param)
                return qmat, qmat.rhs()
            return build_reduced_system(
                X,
                y,
                self.param,
                implicit=self.implicit,
                solver_threads=self.solver_threads,
                tile_cache_mb=self.tile_cache_mb,
                compute_dtype=self.compute_dtype,
                shard_rows=self.shard_rows,
            )
        qmat = backend.create_qmatrix(X, y, self.param)
        return qmat, qmat.rhs()

    # -- estimator API --------------------------------------------------------

    def _backend_description(self) -> str:
        if self.backend is None:
            return "numpy (sparse)" if self.sparse else "numpy"
        backend = self._resolve_backend()
        return backend.describe()

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LSSVC":
        """Train on ``(X, y)``; ``y`` may use any two distinct labels.

        ``X`` may also be a row source (:class:`repro.io.ChunkedDataset`
        or anything :func:`repro.io.is_row_source` accepts) — it is then
        streamed block-by-block and never densified. The whole fit runs
        under :func:`repro.membudget.memory_budget` when
        ``memory_budget_mb`` is set.
        """
        from ..io.chunked import is_row_source  # deferred: io imports core

        self.timings_ = ComponentTimer()
        self._warm_iterations = 0
        # Reset the kernel RSS high-water mark before the wall clock
        # starts: the /proc write is a syscall (and GIL-switch point)
        # that should not count against the fit's phase accounting.
        reset_peak_rss()
        with fit_scope("LSSVC.fit", estimator="LSSVC") as ctx:
            with memory_budget(self.memory_budget_mb), self.timings_.section("total"):
                if is_row_source(X):
                    if self.backend is not None or self.sparse:
                        raise InvalidParameterError(
                            "chunked/row-source training data requires the "
                            "NumPy dense-free path (backend=None, sparse=False)"
                        )
                else:
                    X = np.asarray(X, dtype=self.param.dtype)
                y_enc, labels = encode_labels(y)
                if self.solver == "rff":
                    result, info = self._fit_rff(ctx, X, y_enc, labels)
                else:
                    result, info = self._fit_reduced(ctx, X, y_enc, labels)
        # A fresh batch fit restarts any incremental continuation; keep
        # the encoded targets so a later partial_fit can seed its engine
        # from this very model (see partial_fit).
        self._engine = None
        self._train_targets = y_enc if isinstance(X, np.ndarray) else None
        self.report_ = build_report(
            ctx,
            estimator="LSSVC",
            backend=self._backend_description(),
            num_samples=X.shape[0],
            num_features=X.shape[1] if X.ndim > 1 else 1,
            timings=self.timings_,
            result=result,
            solver_strategy=info.strategy,
            solver_rank=info.rank,
            solver_setup_seconds=info.setup_seconds,
            warm_start_iterations=self._warm_iterations,
        )
        return self

    def _fit_rff(self, ctx, X, y_enc, labels) -> Tuple[CGResult, SolverInfo]:
        """The random-feature primal path: no reduced system, compact model.

        Skips operator assembly entirely — the O(m²)-capable machinery is
        never touched; the whole fit is feature sampling, one blocked Gram
        accumulation, and an (r+1)-dimensional SPD solve.
        """
        with self.timings_.section("cg"):
            fmap, weights, bias, result, info = fit_rff_primal(
                X,
                y_enc,
                self.param,
                rank=self.solver_rank,
                rng=self.solver_seed,
            )
            # ru_maxrss is monotone within the fit, so the one sample at
            # the end of the dominant phase captures the fit's peak; it
            # sits inside the section so the syscall stays accounted.
            sample_peak_rss(ctx)
        self.result_ = result
        self.model_ = FeatureMapModel(
            omega=fmap.omega,
            offsets=fmap.offsets,
            weights=weights,
            bias=bias,
            param=self.param.with_gamma_for(X.shape[1]),
            labels=labels,
            seed=self.solver_seed if isinstance(self.solver_seed, int) else None,
        )
        return result, info

    def _fit_reduced(self, ctx, X, y_enc, labels) -> Tuple[CGResult, SolverInfo]:
        """The reduced-system paths: exact CG and the direct Nyström solve."""
        # Backends transform the data into their device layout here
        # (the paper's "transform" component); the plain NumPy path's
        # operator setup is accounted separately as "assembly".
        setup_section = "transform" if self.backend is not None else "assembly"
        with self.timings_.section(setup_section), ctx.span(setup_section):
            qmat, rhs = self._build_operator(X, y_enc)
            sample_peak_rss(ctx)
        # Solver setup (preconditioner / randomized factorization) is
        # solver work — it trades setup time for iterations — so it is
        # accounted inside the paper's cg section.
        with self.timings_.section("cg"):
            if self.solver == "nystrom":
                result, info = solve_nystrom(
                    qmat,
                    rhs,
                    rank=self.solver_rank,
                    rng=self.solver_seed,
                    polish_iters=self.polish_iters,
                    epsilon=self.param.epsilon,
                )
            else:
                info = SolverInfo()
                precond = make_preconditioner(
                    qmat,
                    self.precondition,
                    rank=self.precond_rank,
                    rng=self.precond_rng,
                )
                if (
                    self.fault_plan is not None
                    or self.checkpoint_interval is not None
                ):
                    # Fault-tolerant driving: checkpointed CG plus
                    # transient retry and device-loss redistribution.
                    solve_kwargs = {}
                    if self.checkpoint_interval is not None:
                        solve_kwargs["checkpoint_interval"] = (
                            self.checkpoint_interval
                        )
                    result = resilient_solve(
                        qmat,
                        rhs,
                        epsilon=self.param.epsilon,
                        max_iter=self.param.max_iter,
                        preconditioner=precond,
                        max_retries=self.max_retries,
                        **solve_kwargs,
                    )
                else:
                    x0 = self._warm_x0(rhs.shape[0], qmat.dtype)
                    result = conjugate_gradient(
                        qmat,
                        rhs,
                        epsilon=self.param.epsilon,
                        max_iter=self.param.max_iter,
                        preconditioner=precond,
                        x0=x0,
                    )
                    if x0 is not None:
                        self._warm_iterations = result.iterations
            sample_peak_rss(ctx)
        alpha, bias = recover_bias_and_alpha(qmat, result.x)
        self.result_ = result
        self.model_ = LSSVMModel(
            support_vectors=qmat.X,
            alpha=alpha,
            bias=bias,
            param=qmat.param,
            labels=labels,
        )
        backend = self._resolve_backend()
        if backend is not None:
            backend.finalize(qmat, self.timings_)
        return result, info

    def _warm_x0(self, n: int, dtype) -> Optional[np.ndarray]:
        """Initial CG guess from the previous model (``warm_start=True``).

        The previous full multiplier vector maps onto the leading entries
        of the reduced unknown (the reduced system eliminates the *last*
        point, so earlier rows keep their indices); new rows start at
        zero. ``None`` when warm starting is off, no compatible previous
        model exists, or the system shrank below the previous size.
        """
        if not self.warm_start or not isinstance(self.model_, LSSVMModel):
            return None
        prev = np.asarray(self.model_.alpha)
        if prev.ndim != 1:
            return None
        if prev.shape[0] == n + 1:
            # Same system size as before (a refit, no appended rows): the
            # previous *reduced* solution is the full vector minus its
            # recovered eliminated entry.
            return np.array(prev[:n], dtype=dtype)
        if not 0 < prev.shape[0] <= n:
            return None
        x0 = np.zeros(n, dtype=dtype)
        x0[: prev.shape[0]] = prev
        return x0

    def partial_fit(self, X: np.ndarray, y: np.ndarray) -> "LSSVC":
        """Extend the training set by a chunk and refit incrementally.

        The first call (on an unfitted estimator) is an ordinary cold
        fit and must contain both classes; every further call appends
        ``(X, y)`` to the accumulated support set and re-solves through
        the :class:`repro.core.incremental.IncrementalEngine` — only the
        new kernel rows are evaluated, CG warm-starts from the previous
        multipliers, and a Nyström preconditioner's pivots are reused
        when the appended chunk is small. After a regular :meth:`fit`,
        ``partial_fit`` continues from that model (one O(m²) kernel
        bootstrap on the first chunk).

        A chunk with **zero rows is a bit-exact no-op**: the model object
        and every coefficient stay untouched.

        The fitted model is updated *in place* and its caches are
        invalidated, so serving handles (``model_.engine()``, a
        :class:`repro.serve.ModelRegistry` entry holding the model)
        observe the refreshed coefficients without an explicit reload.

        Requires the plain exact-CG NumPy path: ``backend=None``,
        ``solver="cg"``, no ``sparse`` / ``shard_rows`` / ``fault_plan``
        / ``checkpoint_interval``.
        """
        if self.backend is not None:
            raise InvalidParameterError(
                "partial_fit runs on the NumPy path; use backend=None"
            )
        if self.sparse or self.shard_rows is not None:
            raise InvalidParameterError(
                "partial_fit supports neither sparse CG nor row sharding"
            )
        if self.solver != "cg":
            raise InvalidParameterError(
                "partial_fit requires solver='cg' (the randomized direct "
                "solves have no warm-startable iteration)"
            )
        if self.fault_plan is not None or self.checkpoint_interval is not None:
            raise InvalidParameterError(
                "partial_fit does not drive the resilient solver"
            )
        X = np.asarray(X, dtype=self.param.dtype)
        if X.ndim != 2:
            raise DataError("training data must be 2-D")
        if X.shape[0] == 0:
            if self.model_ is None:
                raise DataError("the first partial_fit chunk is empty")
            return self  # bit-exact no-op: nothing changes
        engine = self._engine
        if engine is None:
            engine = IncrementalEngine(
                self.param,
                precondition=self.precondition,
                precond_rank=self.precond_rank,
                precond_rng=self.precond_rng,
                solver_threads=self.solver_threads,
                tile_cache_mb=self.tile_cache_mb,
                compute_dtype=self.compute_dtype,
            )
            if self.implicit is True:
                engine.explicit_limit = 0
            elif self.implicit is False:
                engine.explicit_limit = 2**62
            if self.model_ is not None:
                if (
                    not isinstance(self.model_, LSSVMModel)
                    or self._train_targets is None
                    or not isinstance(self.model_.support_vectors, np.ndarray)
                ):
                    raise InvalidParameterError(
                        "cannot continue incrementally from the previous fit "
                        "(compact/row-source models keep no appendable "
                        "support set); start from a fresh estimator"
                    )
                engine.seed(
                    self.model_.support_vectors,
                    self._train_targets,
                    self.model_.alpha,
                )
                self._partial_labels = self.model_.labels
            self._engine = engine
        labels = getattr(self, "_partial_labels", None)
        if labels is None:
            y_enc, labels = encode_labels(y)
            self._partial_labels = labels
        else:
            y_enc = self._encode_chunk(y, labels)
        self.timings_ = ComponentTimer()
        reset_peak_rss()
        with fit_scope("LSSVC.partial_fit", estimator="LSSVC") as ctx:
            with memory_budget(self.memory_budget_mb), self.timings_.section("total"):
                with self.timings_.section("refit"), ctx.span(
                    "refit", new_rows=X.shape[0], total_rows=engine.num_rows + X.shape[0]
                ):
                    res = engine.update(X, y_enc)
                sample_peak_rss(ctx)
                model = self.model_
                if isinstance(model, LSSVMModel):
                    # Mutate in place: live serving handles keep pointing at
                    # this object; invalidation refreshes their caches and
                    # fires any registry generation bump.
                    model.support_vectors = engine.X
                    model.alpha = res.alpha
                    model.bias = float(res.bias)
                    model.param = engine.param
                    model.labels = labels
                    model.invalidate_caches()
                else:
                    self.model_ = LSSVMModel(
                        support_vectors=engine.X,
                        alpha=res.alpha,
                        bias=float(res.bias),
                        param=engine.param,
                        labels=labels,
                    )
        self.result_ = res.result
        self._train_targets = engine.y
        self.report_ = build_report(
            ctx,
            estimator="LSSVC",
            backend=self._backend_description(),
            num_samples=engine.num_rows,
            num_features=engine.X.shape[1],
            timings=self.timings_,
            result=res.result,
            warm_start_iterations=res.warm_start_iterations,
        )
        return self

    @staticmethod
    def _encode_chunk(y, labels) -> np.ndarray:
        """Encode a follow-up chunk against the established label alphabet."""
        y = np.asarray(y).ravel()
        if y.size == 0:
            raise DataError("label vector is empty")
        pos, neg = labels
        unknown = (y != pos) & (y != neg)
        if unknown.any():
            raise DataError(
                f"chunk contains labels outside the fitted alphabet "
                f"({pos:g}, {neg:g})"
            )
        return np.where(y == pos, 1.0, -1.0)

    def _require_model(self) -> LSSVMModel:
        if self.model_ is None:
            raise NotFittedError("LSSVC is not fitted yet; call fit() first")
        return self.model_

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw values of ``f(x) = sum_i alpha_i k(x_i, x) + b``."""
        return self._require_model().decision_function(X)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted labels, in the alphabet seen during :meth:`fit`."""
        return self._require_model().predict(X)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy on ``(X, y)``."""
        return self._require_model().score(X, y)

    def save(self, path) -> None:
        """Write the fitted model in LIBSVM model format (the ``write`` step)."""
        model = self._require_model()
        with self.timings_.section("write"):
            model.save(path)

    @property
    def iterations_(self) -> int:
        """CG iterations of the last fit."""
        if self.result_ is None:
            raise NotFittedError("LSSVC is not fitted yet; call fit() first")
        return self.result_.iterations
