"""Solver strategies for LS-SVM training: exact CG, direct Nyström, RFF.

The paper's exact solver pays O(m²) kernel work per CG matvec. PR 2
already used a rank-``r`` RPCholesky Nyström factorization *as a
preconditioner*; following Andrecut (*Randomized Kernel Methods for
Least-Squares Support Vector Machines*) this module solves the
randomized rank-``r`` problem **directly** — O(m·r) training instead of
O(m²) per iteration — behind a single ``solver=`` strategy switch:

* ``"cg"`` — the exact path (Eq. 14 solved by preconditioned CG), the
  default and the accuracy reference.
* ``"nystrom"`` — the reduced system's corrected kernel is factored by
  randomly pivoted partial Cholesky (reusing
  :class:`repro.core.precond.NystromPrecond`) and the rank-``r``
  surrogate ``(F F^T + diag(ridge)) x = b`` is solved in closed form via
  the Woodbury identity — **no outer CG**. An optional *polish* runs a
  few warm-started exact-CG iterations from the direct solution
  (Glasmachers' recipe: cheap refinement on top of a randomized
  solution recovers most of the exact accuracy).
* ``"rff"`` — a random Fourier feature map (Rahimi & Recht) for the RBF
  kernel: ``z(x) = sqrt(2/r) cos(x Omega + b)`` with
  ``Omega ~ N(0, 2 gamma)`` turns the kernel problem into an
  ``r``-dimensional *primal* ridge regression whose normal equations are
  an ``(r+1) x (r+1)`` SPD solve — O(m r d + m r² + r³) training and a
  **compact model** (feature-map weights, no support set) with O(r d)
  predict cost per row.

All strategies report through the active telemetry context and return a
:class:`SolverInfo` (strategy, realized rank, setup seconds) alongside
the familiar :class:`~repro.core.cg.CGResult` /
:class:`~repro.core.cg.BlockCGResult`, so the per-fit
:class:`~repro.telemetry.TrainingReport` can attribute every fit to the
tier that ran. Randomness is driven by a *single* seed per fit
(``solver_seed``): RPCholesky pivot sampling and RFF frequency sampling
both consume the same seeded generator, making randomized fits
bit-reproducible run-to-run.
"""

from __future__ import annotations

import dataclasses
import time
from typing import List, Optional, Tuple, Union

import numpy as np

from ..exceptions import InvalidParameterError
from ..parameter import Parameter
from ..telemetry.context import current_context
from ..types import KernelType, SolverStatus
from .cg import BlockCGResult, CGResult, conjugate_gradient
from .kernels import kernel_matrix
from .precond import NystromPrecond, rpcholesky

__all__ = [
    "SOLVER_STRATEGIES",
    "SolverInfo",
    "FourierFeatureMap",
    "default_solver_rank",
    "resolve_solver",
    "solve_nystrom",
    "solve_nystrom_block",
    "sample_fourier_features",
    "fit_rff_primal",
    "fit_rff_primal_multi",
    "fit_reduced_set",
]

#: The recognised ``solver=`` strategies.
SOLVER_STRATEGIES = ("cg", "nystrom", "rff")


def resolve_solver(name: Union[str, None]) -> str:
    """Normalize and validate a ``solver=`` argument."""
    if name is None:
        return "cg"
    key = str(name).strip().lower()
    if key not in SOLVER_STRATEGIES:
        raise InvalidParameterError(
            f"unknown solver {name!r}; expected one of {', '.join(SOLVER_STRATEGIES)}"
        )
    return key


def default_solver_rank(n: int) -> int:
    """Rank heuristic for the *direct* randomized solvers: ``~4 sqrt(n)``.

    Twice :func:`repro.core.precond.default_nystrom_rank` — a direct
    solve has no outer CG to mop up the tail of the spectrum, so it
    needs a larger slice of it up front. Clamped to ``[32, min(n, 1024)]``:
    setup stays O(m r d + m r²), far below one exact O(m²) sweep, while
    the rank is large enough that the rank-``r`` surrogate's solution
    classifies within a percent of the exact one on smooth RBF problems.
    """
    if n < 1:
        raise InvalidParameterError(f"system size must be positive, got {n}")
    return max(32, min(int(4 * np.sqrt(n)), n, 1024))


@dataclasses.dataclass
class SolverInfo:
    """Which solver tier ran, at what rank, and what its setup cost.

    Stamped into the per-fit :class:`~repro.telemetry.TrainingReport`'s
    ``solver`` object as ``strategy`` / ``rank`` / ``setup_seconds``.
    ``rank`` is the *realized* rank (RPCholesky may stop early when the
    residual trace is exhausted); 0 for the exact ``cg`` strategy.
    """

    strategy: str = "cg"
    rank: int = 0
    setup_seconds: float = 0.0


def _direct_result(qmat, rhs: np.ndarray, x: np.ndarray) -> CGResult:
    """Wrap a direct solution with one honest true-residual evaluation."""
    rhs = np.asarray(rhs)
    b_norm = float(np.linalg.norm(rhs))
    if b_norm == 0.0:
        residual = 0.0
    else:
        residual = float(np.linalg.norm(rhs - qmat.matvec(x))) / b_norm
    return CGResult(
        x=np.asarray(x),
        iterations=0,
        residual=residual,
        status=SolverStatus.DIRECT,
        residual_history=[residual],
    )


def _build_nystrom(qmat, rank: Optional[int], rng) -> Tuple[NystromPrecond, float]:
    """RPCholesky-factor the reduced system; returns (operator, setup seconds)."""
    n = qmat.shape[0]
    r = default_solver_rank(n) if rank is None else int(rank)
    if r < 1:
        raise InvalidParameterError(f"solver_rank must be positive, got {rank}")
    ctx = current_context()
    start = time.perf_counter()
    with ctx.span("solver_setup", strategy="nystrom", rank=min(r, n)):
        nys = NystromPrecond.from_qmatrix(qmat, rank=min(r, n), rng=rng)
    setup_seconds = time.perf_counter() - start
    ctx.set_gauge("solver_rank", nys.rank)
    return nys, setup_seconds


def solve_nystrom(
    qmat,
    rhs: np.ndarray,
    *,
    rank: Optional[int] = None,
    rng: Union[None, int, np.random.Generator] = None,
    polish_iters: int = 0,
    epsilon: float = 1e-3,
) -> Tuple[CGResult, SolverInfo]:
    """Direct rank-``r`` Nyström solve of the reduced system (Eq. 14).

    Factors the corrected kernel ``G ~= F F^T`` by RPCholesky (never
    materializing it) and solves the surrogate
    ``(F F^T + diag(ridge)) x = b`` exactly through the Woodbury
    identity — :meth:`NystromPrecond.apply` *is* that closed-form
    inverse, one thin SVD at setup and two O(m r) GEMVs to apply.

    ``polish_iters > 0`` then runs warm-started exact CG from the direct
    solution, preconditioned by the very factorization that produced it
    — each polish iteration costs one exact O(m²) sweep but starts from
    a residual already small, so a handful recover exact-CG accuracy.
    """
    nys, setup_seconds = _build_nystrom(qmat, rank, rng)
    x = nys.apply(rhs)
    if polish_iters > 0:
        result = conjugate_gradient(
            qmat,
            rhs,
            epsilon=epsilon,
            max_iter=int(polish_iters),
            x0=x,
            preconditioner=nys,
            warn_on_no_convergence=False,
        )
    else:
        result = _direct_result(qmat, rhs, x)
    return result, SolverInfo("nystrom", nys.rank, setup_seconds)


def solve_nystrom_block(
    qmat,
    B: np.ndarray,
    *,
    rank: Optional[int] = None,
    rng: Union[None, int, np.random.Generator] = None,
    polish_iters: int = 0,
    epsilon: float = 1e-3,
) -> Tuple[BlockCGResult, SolverInfo]:
    """Block variant of :func:`solve_nystrom` (shared multi-class solve).

    The Woodbury apply is already block-shaped — all ``k`` right-hand
    sides ride one factorization and one pair of thin GEMMs. Polish runs
    per column (the block solver has no warm-start), which is fine: the
    point of polish is a *few* iterations.
    """
    B = np.asarray(B)
    if B.ndim != 2:
        raise InvalidParameterError("block right-hand side must be 2-D")
    nys, setup_seconds = _build_nystrom(qmat, rank, rng)
    X = nys.apply(B)
    k = B.shape[1]
    if polish_iters > 0:
        columns = [
            conjugate_gradient(
                qmat,
                B[:, j],
                epsilon=epsilon,
                max_iter=int(polish_iters),
                x0=X[:, j],
                preconditioner=nys,
                warn_on_no_convergence=False,
            )
            for j in range(k)
        ]
        X = np.column_stack([c.x for c in columns])
        residuals = np.asarray([c.residual for c in columns], dtype=np.float64)
        iterations = max(c.iterations for c in columns)
        statuses = [c.status for c in columns]
        status = (
            SolverStatus.CONVERGED
            if all(s is SolverStatus.CONVERGED for s in statuses)
            else SolverStatus.MAX_ITERATIONS
        )
    else:
        R = np.asarray(B, dtype=np.float64) - qmat.matvec_multi(X)
        b_norms = np.linalg.norm(np.asarray(B, dtype=np.float64), axis=0)
        with np.errstate(divide="ignore", invalid="ignore"):
            residuals = np.where(
                b_norms > 0.0, np.linalg.norm(R, axis=0) / b_norms, 0.0
            )
        iterations = 0
        status = SolverStatus.DIRECT
    result = BlockCGResult(
        X=X,
        iterations=iterations,
        residuals=residuals,
        status=status,
        residual_history=[float(residuals.max()) if residuals.size else 0.0],
    )
    return result, SolverInfo("nystrom", nys.rank, setup_seconds)


# -- random Fourier features --------------------------------------------------


@dataclasses.dataclass
class FourierFeatureMap:
    """The RFF map ``z(x) = sqrt(2/r) cos(x Omega + offsets)``.

    ``Omega`` has shape ``(d, r)`` with entries drawn ``N(0, 2 gamma)``
    — the spectral measure of ``k(x, y) = exp(-gamma ||x - y||²)`` —
    and ``offsets ~ U[0, 2 pi)``, so ``E[z(x) . z(y)] = k(x, y)``
    (Rahimi & Recht, *Random Features for Large-Scale Kernel Machines*).
    """

    omega: np.ndarray
    offsets: np.ndarray

    def __post_init__(self) -> None:
        self.omega = np.ascontiguousarray(np.asarray(self.omega, dtype=np.float64))
        self.offsets = np.asarray(self.offsets, dtype=np.float64).ravel()
        if self.omega.ndim != 2:
            raise InvalidParameterError("omega must be a 2-D (d, r) array")
        if self.offsets.shape[0] != self.omega.shape[1]:
            raise InvalidParameterError(
                f"{self.offsets.shape[0]} offsets for {self.omega.shape[1]} frequencies"
            )

    @property
    def num_features(self) -> int:
        return self.omega.shape[0]

    @property
    def rank(self) -> int:
        return self.omega.shape[1]

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Feature rows ``z(x)`` for each row of ``X``; shape ``(n, r)``."""
        X = np.asarray(X, dtype=np.float64)
        single = X.ndim == 1
        if single:
            X = X[None, :]
        if X.shape[1] != self.num_features:
            raise InvalidParameterError(
                f"data has {X.shape[1]} features, feature map expects {self.num_features}"
            )
        Z = X @ self.omega
        Z += self.offsets
        np.cos(Z, out=Z)
        Z *= np.sqrt(2.0 / self.rank)
        return Z[0] if single else Z


def sample_fourier_features(
    num_features: int,
    rank: int,
    gamma: float,
    rng: Union[None, int, np.random.Generator] = None,
) -> FourierFeatureMap:
    """Draw an RFF map for the RBF kernel with the given ``gamma``."""
    if num_features < 1:
        raise InvalidParameterError("num_features must be positive")
    if rank < 1:
        raise InvalidParameterError(f"rank must be positive, got {rank}")
    if gamma is None or gamma <= 0:
        raise InvalidParameterError(f"rff requires gamma > 0, got {gamma}")
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    omega = gen.normal(0.0, np.sqrt(2.0 * gamma), size=(num_features, int(rank)))
    offsets = gen.uniform(0.0, 2.0 * np.pi, size=int(rank))
    return FourierFeatureMap(omega=omega, offsets=offsets)


def _rff_normal_equations(
    X: np.ndarray,
    Y: np.ndarray,
    fmap: FourierFeatureMap,
    cost: float,
    *,
    block_rows: int = 2048,
) -> Tuple[np.ndarray, np.ndarray]:
    """Assemble the SPD ``(r+1) x (r+1)`` primal system in row blocks.

    The LS-SVM primal on the feature rows ``Z`` (with bias) is ridge
    regression; its normal equations are

        [Z^T Z + I/C   Z^T 1] [w]   [Z^T Y]
        [1^T Z         m    ] [b] = [1^T Y]

    Blocked accumulation keeps peak memory at ``block_rows * r`` feature
    entries — the same bounded-tile idiom as the kernel pipeline. ``X``
    may be a row source (:func:`repro.io.chunked.is_row_source`), in
    which case blocks stream straight from disk and dense ``X`` is never
    materialized.
    """
    from ..io.chunked import is_row_source

    m = X.shape[0] if not is_row_source(X) else X.num_rows
    r = fmap.rank
    k = Y.shape[1]
    G = np.zeros((r + 1, r + 1), dtype=np.float64)
    rhs = np.zeros((r + 1, k), dtype=np.float64)
    if is_row_source(X):
        blocks = X.iter_blocks(block_rows)
    else:
        blocks = (
            (start, min(start + block_rows, m), X[start : min(start + block_rows, m)])
            for start in range(0, m, block_rows)
        )
    for start, stop, block in blocks:
        Z = fmap.transform(block)
        G[:r, :r] += Z.T @ Z
        G[:r, r] += Z.sum(axis=0)
        rhs[:r] += Z.T @ Y[start:stop]
    G[r, :r] = G[:r, r]
    G[r, r] = float(m)
    G[:r, :r] += np.eye(r) / float(cost)
    rhs[r] = Y.sum(axis=0)
    return G, rhs


def _solve_spd(G: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    try:
        theta = np.linalg.solve(G, rhs)
        if np.all(np.isfinite(theta)):
            return theta
    except np.linalg.LinAlgError:
        pass
    return np.linalg.lstsq(G, rhs, rcond=None)[0]


def fit_rff_primal_multi(
    X: np.ndarray,
    Y: np.ndarray,
    param: Parameter,
    *,
    rank: Optional[int] = None,
    rng: Union[None, int, np.random.Generator] = None,
) -> Tuple[FourierFeatureMap, np.ndarray, np.ndarray, BlockCGResult, SolverInfo]:
    """RFF primal fit with ``k`` target columns sharing one feature map.

    Returns ``(fmap, W, biases, result, info)`` with ``W`` of shape
    ``(r, k)``; column ``j`` solves targets ``Y[:, j]``. The shared
    multi-class path uses this: one frequency draw, one Gram assembly,
    one factorization for all classes.
    """
    if param.kernel is not KernelType.RBF:
        raise InvalidParameterError(
            f"solver='rff' maps the RBF kernel only, not {param.kernel}"
        )
    from ..io.chunked import is_row_source

    if not is_row_source(X):
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise InvalidParameterError("training data must be 2-D")
    Y = np.asarray(Y, dtype=np.float64)
    single = Y.ndim == 1
    if single:
        Y = Y[:, None]
    if Y.shape[0] != X.shape[0]:
        raise InvalidParameterError("data and targets disagree in length")
    m, d = X.shape
    param = param.with_gamma_for(d)
    r = default_solver_rank(m) if rank is None else int(rank)
    if r < 1:
        raise InvalidParameterError(f"solver_rank must be positive, got {rank}")

    ctx = current_context()
    start = time.perf_counter()
    with ctx.span("solver_setup", strategy="rff", rank=r):
        fmap = sample_fourier_features(d, r, param.gamma, rng)
        G, rhs = _rff_normal_equations(X, Y, fmap, param.cost)
    setup_seconds = time.perf_counter() - start
    ctx.set_gauge("solver_rank", r)

    theta = _solve_spd(G, rhs)
    W = theta[:r, :]
    biases = theta[r, :]
    # Residual of the normal equations themselves (one honest check of
    # the r³ factorization, not of the kernel approximation).
    rhs_norms = np.linalg.norm(rhs, axis=0)
    res_norms = np.linalg.norm(G @ theta - rhs, axis=0)
    with np.errstate(divide="ignore", invalid="ignore"):
        residuals = np.where(rhs_norms > 0.0, res_norms / rhs_norms, 0.0)
    result = BlockCGResult(
        X=W,
        iterations=0,
        residuals=residuals,
        status=SolverStatus.DIRECT,
        residual_history=[float(residuals.max()) if residuals.size else 0.0],
    )
    return fmap, W, biases, result, SolverInfo("rff", r, setup_seconds)


def fit_rff_primal(
    X: np.ndarray,
    y: np.ndarray,
    param: Parameter,
    *,
    rank: Optional[int] = None,
    rng: Union[None, int, np.random.Generator] = None,
) -> Tuple[FourierFeatureMap, np.ndarray, float, CGResult, SolverInfo]:
    """Single-target RFF primal fit; see :func:`fit_rff_primal_multi`.

    Returns ``(fmap, weights, bias, result, info)``.
    """
    fmap, W, biases, block_result, info = fit_rff_primal_multi(
        X, y, param, rank=rank, rng=rng
    )
    return fmap, W[:, 0], float(biases[0]), block_result.column(0), info


# -- reduced-set (landmark) solve ---------------------------------------------


def fit_reduced_set(
    X: np.ndarray,
    y: np.ndarray,
    param: Parameter,
    *,
    rank: int,
    rng: Union[None, int, np.random.Generator] = None,
    pivots: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, float, np.ndarray, SolverInfo]:
    """Sparse LS-SVM on RPCholesky landmarks (the reduced-set method).

    Restricts the expansion to ``r`` landmark points — the RPCholesky
    pivots, which by construction chase the kernel matrix's residual
    diagonal and so land on the most informative points — and solves the
    regularized primal least squares over their coefficients:

        min_{beta, b}  C/2 ||y - K_mr beta - b 1||² + 1/2 beta^T K_rr beta

    whose normal equations are the SPD ``(r+1) x (r+1)`` system

        [K_rm K_mr + K_rr / C   K_rm 1] [beta]   [K_rm y]
        [1^T K_mr               m     ] [b   ] = [1^T y ].

    This is the one randomized-approximation code path the deprecated
    pruning-based ``SparseLSSVC`` now routes through. Returns
    ``(beta, bias, pivots, info)``; the model is a standard
    :class:`~repro.core.model.LSSVMModel` over ``X[pivots]``.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise InvalidParameterError("training data must be 2-D")
    y = np.asarray(y, dtype=np.float64).ravel()
    if y.shape[0] != X.shape[0]:
        raise InvalidParameterError("data and targets disagree in length")
    m, d = X.shape
    param = param.with_gamma_for(d)
    if rank < 1:
        raise InvalidParameterError(f"rank must be positive, got {rank}")
    kw = param.kernel_kwargs()

    start = time.perf_counter()
    if pivots is None:
        _, pivot_list = rpcholesky(
            X, param.kernel, rank=min(int(rank), m), rng=rng, **kw
        )
        pivots = np.asarray(pivot_list, dtype=np.intp)
    else:
        pivots = np.asarray(pivots, dtype=np.intp).ravel()
    if pivots.size < 1:
        raise InvalidParameterError("reduced-set solve needs at least one landmark")
    landmarks = X[pivots]
    K_mr = kernel_matrix(X, landmarks, param.kernel, **kw).astype(np.float64)
    K_rr = K_mr[pivots]
    r = pivots.size
    G = np.zeros((r + 1, r + 1), dtype=np.float64)
    G[:r, :r] = K_mr.T @ K_mr + K_rr / float(param.cost)
    col_sums = K_mr.sum(axis=0)
    G[:r, r] = col_sums
    G[r, :r] = col_sums
    G[r, r] = float(m)
    # K_rr may be numerically singular (coherent landmarks); a trace-scaled
    # jitter keeps the factorization alive without moving the solution.
    G[:r, :r] += np.eye(r) * (1e-10 * max(np.trace(K_rr) / r, 1.0))
    rhs = np.concatenate([K_mr.T @ y, [float(y.sum())]])
    theta = _solve_spd(G, rhs[:, None])[:, 0]
    setup_seconds = time.perf_counter() - start
    ctx = current_context()
    ctx.set_gauge("solver_rank", int(r))
    return (
        theta[:r],
        float(theta[r]),
        pivots,
        SolverInfo("nystrom", int(r), setup_seconds),
    )
