"""Sparse LS-SVM via reduced-set landmarks (deprecated front-end).

Unlike the classic SVM, the LS-SVM keeps *every* training point as a
support vector (§II-C), which makes its models large and prediction
linear in the training set size. The historical remedy implemented here
— Suykens et al.'s iterative smallest-``|alpha|`` pruning — refit the
model once per pruning round, paying many dense solves to end up with a
small support set.

The solver-strategy layer (:mod:`repro.core.solvers`) obsoletes that:
:func:`~repro.core.solvers.fit_reduced_set` picks the landmark set in
one RPCholesky pass and solves the r-dimensional reduced-set problem
directly, giving the same artifact (an LS-SVM whose support set is a
small subset of the training points) for a fraction of the cost.
:class:`SparseLSSVC` is kept as a deprecated shim over that path; new
code should use ``LSSVC(solver="nystrom")`` for fast full-support fits
or ``LSSVC(solver="rff")`` for compact models.
"""

from __future__ import annotations

import warnings
from typing import List, Optional, Union

import numpy as np

from ..exceptions import DataError, InvalidParameterError, NotFittedError
from ..parameter import Parameter
from ..types import KernelType
from .lssvm import LSSVC, encode_labels
from .model import LSSVMModel
from .solvers import default_solver_rank, fit_reduced_set

__all__ = ["SparseLSSVC"]


class SparseLSSVC:
    """Reduced-set sparse LS-SVM classifier (deprecated).

    .. deprecated::
        Use ``LSSVC(solver="nystrom")`` (fast randomized solve, full
        support set) or ``LSSVC(solver="rff")`` (compact feature-map
        model) instead. This shim remains for the old pruning-based API
        and now trains via one reduced-set landmark solve.

    Parameters
    ----------
    kernel, C, gamma, degree, coef0, epsilon:
        Forwarded to the underlying :class:`LSSVC`.
    target_fraction:
        Fraction of the training points to keep as support vectors
        (landmarks).
    prune_per_round:
        Retained for signature compatibility with the pruning-based
        implementation; the landmark solve selects the support set in a
        single pass, so this no longer influences the result.
    min_accuracy_drop:
        Guard rail: if the reduced-set model's training accuracy falls
        more than this below the full-support baseline, the baseline
        model is kept instead.
    """

    def __init__(
        self,
        kernel: Union[str, int, KernelType] = "rbf",
        C: float = 1.0,
        *,
        gamma: Optional[float] = None,
        degree: int = 3,
        coef0: float = 0.0,
        epsilon: float = 1e-6,
        target_fraction: float = 0.25,
        prune_per_round: float = 0.1,
        min_accuracy_drop: float = 0.05,
    ) -> None:
        warnings.warn(
            "SparseLSSVC is deprecated; use LSSVC(solver='nystrom') for fast "
            "randomized fits or LSSVC(solver='rff') for compact models",
            DeprecationWarning,
            stacklevel=2,
        )
        if not 0.0 < target_fraction < 1.0:
            raise InvalidParameterError("target_fraction must lie in (0, 1)")
        if not 0.0 < prune_per_round < 1.0:
            raise InvalidParameterError("prune_per_round must lie in (0, 1)")
        if min_accuracy_drop < 0:
            raise InvalidParameterError("min_accuracy_drop must be non-negative")
        self._hyper = dict(
            kernel=kernel, C=C, gamma=gamma, degree=degree, coef0=coef0,
            epsilon=epsilon,
        )
        self.target_fraction = target_fraction
        self.prune_per_round = prune_per_round
        self.min_accuracy_drop = min_accuracy_drop
        self.estimator_: Optional[LSSVC] = None
        self.support_indices_: Optional[np.ndarray] = None
        self.history_: List[dict] = []

    def _wrap(self, model: LSSVMModel) -> LSSVC:
        """An LSSVC shell around a ready-made model (prediction interface)."""
        clf = LSSVC(**self._hyper)
        clf.model_ = model
        return clf

    def fit(self, X: np.ndarray, y: np.ndarray) -> "SparseLSSVC":
        X = np.asarray(X)
        y = np.asarray(y).ravel()
        if X.shape[0] != y.shape[0]:
            raise DataError("data and labels disagree in length")
        m = X.shape[0]
        rank = min(max(int(round(m * self.target_fraction)), 4), m - 1)

        # Full-support baseline via the randomized direct solve: cheap, and
        # its support set is genuinely all m points.
        baseline = LSSVC(
            solver="nystrom",
            solver_rank=min(default_solver_rank(m), m - 1),
            solver_seed=0,
            **self._hyper,
        ).fit(X, y)
        base_accuracy = baseline.score(X, y)
        self.history_ = [{"support": m, "train_accuracy": base_accuracy}]

        y_enc, labels = encode_labels(y)
        param = Parameter(
            kernel=self._hyper["kernel"],
            cost=self._hyper["C"],
            gamma=self._hyper["gamma"],
            degree=self._hyper["degree"],
            coef0=self._hyper["coef0"],
            epsilon=self._hyper["epsilon"],
        )
        Xd = np.ascontiguousarray(X, dtype=param.dtype)
        beta, bias, pivots, _ = fit_reduced_set(
            Xd, y_enc, param, rank=rank, rng=0
        )
        fixed = self._ensure_both_classes(pivots, y_enc)
        if not np.array_equal(fixed, pivots):
            # Class guard changed the landmark set: re-solve on it.
            beta, bias, pivots, _ = fit_reduced_set(
                Xd, y_enc, param, rank=rank, rng=0, pivots=fixed
            )
        sparse_model = LSSVMModel(
            support_vectors=np.ascontiguousarray(Xd[pivots]),
            alpha=beta,
            bias=bias,
            param=param.with_gamma_for(X.shape[1]),
            labels=labels,
        )
        sparse = self._wrap(sparse_model)
        accuracy = sparse.score(X, y)
        self.history_.append(
            {"support": int(pivots.shape[0]), "train_accuracy": accuracy}
        )
        if accuracy < base_accuracy - self.min_accuracy_drop:
            # The landmark budget is too tight for this data: keep the
            # full-support baseline rather than ship a degraded model.
            self.estimator_ = baseline
            self.support_indices_ = np.arange(m)
            self.history_.pop()
            return self
        self.estimator_ = sparse
        self.support_indices_ = np.sort(pivots)
        return self

    @staticmethod
    def _ensure_both_classes(pivots: np.ndarray, y_enc: np.ndarray) -> np.ndarray:
        """Swap one landmark for the missing class if pruning killed it."""
        pivots = np.asarray(pivots)
        kept = y_enc[pivots]
        if np.unique(kept).size >= 2:
            return pivots
        missing = np.nonzero(y_enc != kept[0])[0]
        if missing.size == 0:
            return pivots
        fixed = pivots.copy()
        fixed[-1] = missing[0]
        return fixed

    def _require_fitted(self) -> LSSVC:
        if self.estimator_ is None:
            raise NotFittedError("SparseLSSVC is not fitted yet; call fit() first")
        return self.estimator_

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self._require_fitted().predict(X)

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        return self._require_fitted().decision_function(X)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        return self._require_fitted().score(X, y)

    @property
    def num_support_vectors(self) -> int:
        return self._require_fitted().model_.num_support_vectors

    @property
    def compression(self) -> float:
        """Original points per retained support vector."""
        if not self.history_:
            raise NotFittedError("SparseLSSVC is not fitted yet; call fit() first")
        return self.history_[0]["support"] / self.num_support_vectors
