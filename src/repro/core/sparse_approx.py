"""Sparse approximation of the LS-SVM by support pruning (paper ref. [26]).

Unlike the classic SVM, the LS-SVM keeps *every* training point as a
support vector (§II-C), which makes its models large and prediction
linear in the training set size. Suykens et al.'s remedy prunes the
spectrum: since ``|alpha_i|`` is proportional to point ``i``'s contribution
(it equals ``C * xi_i``), iteratively dropping the smallest-``|alpha|``
points and retraining on the survivors yields a sparse model that usually
sacrifices little accuracy.

:class:`SparseLSSVC` wraps any LSSVC-compatible estimator and prunes a
fixed fraction per round until the target support size (or an accuracy
floor on the training data) is reached.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from ..exceptions import DataError, InvalidParameterError, NotFittedError
from ..types import KernelType
from .lssvm import LSSVC

__all__ = ["SparseLSSVC"]


class SparseLSSVC:
    """Pruning-based sparse LS-SVM classifier.

    Parameters
    ----------
    kernel, C, gamma, degree, coef0, epsilon:
        Forwarded to the underlying :class:`LSSVC`.
    target_fraction:
        Fraction of the training points to keep as support vectors.
    prune_per_round:
        Fraction of the *current* support set dropped per pruning round
        (Suykens et al. recommend gradual pruning, e.g. 5 %).
    min_accuracy_drop:
        Stop early when the training accuracy falls more than this below
        the unpruned model's.
    """

    def __init__(
        self,
        kernel: Union[str, int, KernelType] = "rbf",
        C: float = 1.0,
        *,
        gamma: Optional[float] = None,
        degree: int = 3,
        coef0: float = 0.0,
        epsilon: float = 1e-6,
        target_fraction: float = 0.25,
        prune_per_round: float = 0.1,
        min_accuracy_drop: float = 0.05,
    ) -> None:
        if not 0.0 < target_fraction < 1.0:
            raise InvalidParameterError("target_fraction must lie in (0, 1)")
        if not 0.0 < prune_per_round < 1.0:
            raise InvalidParameterError("prune_per_round must lie in (0, 1)")
        if min_accuracy_drop < 0:
            raise InvalidParameterError("min_accuracy_drop must be non-negative")
        self._make = lambda: LSSVC(
            kernel=kernel, C=C, gamma=gamma, degree=degree, coef0=coef0,
            epsilon=epsilon,
        )
        self.target_fraction = target_fraction
        self.prune_per_round = prune_per_round
        self.min_accuracy_drop = min_accuracy_drop
        self.estimator_: Optional[LSSVC] = None
        self.support_indices_: Optional[np.ndarray] = None
        self.history_: List[dict] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "SparseLSSVC":
        X = np.asarray(X)
        y = np.asarray(y).ravel()
        if X.shape[0] != y.shape[0]:
            raise DataError("data and labels disagree in length")
        target = max(int(round(X.shape[0] * self.target_fraction)), 4)

        accepted = np.arange(X.shape[0])
        clf = self._make().fit(X, y)
        base_accuracy = clf.score(X, y)
        self.history_ = [
            {"support": X.shape[0], "train_accuracy": base_accuracy}
        ]

        while accepted.shape[0] > target:
            drop = max(int(round(accepted.shape[0] * self.prune_per_round)), 1)
            keep_count = max(accepted.shape[0] - drop, target)
            # Keep the largest-|alpha| points — but never let a class die.
            order = np.argsort(np.abs(clf.model_.alpha))[::-1]
            keep_local = _keep_both_classes(order, y[accepted], keep_count)
            candidate_idx = accepted[keep_local]
            candidate = self._make().fit(X[candidate_idx], y[candidate_idx])
            accuracy = candidate.score(X, y)
            self.history_.append(
                {"support": candidate_idx.shape[0], "train_accuracy": accuracy}
            )
            if accuracy < base_accuracy - self.min_accuracy_drop:
                break
            clf = candidate
            accepted = candidate_idx

        self.estimator_ = clf
        self.support_indices_ = accepted
        return self

    def _require_fitted(self) -> LSSVC:
        if self.estimator_ is None:
            raise NotFittedError("SparseLSSVC is not fitted yet; call fit() first")
        return self.estimator_

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self._require_fitted().predict(X)

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        return self._require_fitted().decision_function(X)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        return self._require_fitted().score(X, y)

    @property
    def num_support_vectors(self) -> int:
        return self._require_fitted().model_.num_support_vectors

    @property
    def compression(self) -> float:
        """Original points per retained support vector."""
        if not self.history_:
            raise NotFittedError("SparseLSSVC is not fitted yet; call fit() first")
        return self.history_[0]["support"] / self.num_support_vectors


def _keep_both_classes(
    order: np.ndarray, labels: np.ndarray, keep_count: int
) -> np.ndarray:
    """Select ``keep_count`` indices by priority while retaining both classes."""
    selected = order[:keep_count]
    kept_labels = labels[selected]
    if np.unique(kept_labels).size >= 2:
        return np.sort(selected)
    # All kept points are one class: swap the lowest-priority keeper for the
    # highest-priority point of the missing class.
    missing_mask = labels != kept_labels[0]
    for idx in order[keep_count:]:
        if missing_mask[idx]:
            selected = np.concatenate([selected[:-1], [idx]])
            break
    return np.sort(selected)
