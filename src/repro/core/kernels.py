"""Kernel functions of the (LS-)SVM (paper §II-E).

Three shapes of evaluation are provided, all sharing one dispatch table:

* :func:`kernel_scalar` — a single pair ``k(x, y)``;
* :func:`kernel_row` — one point against a matrix of points (prediction,
  and the cached ``q`` vector of §III-C2);
* :func:`kernel_matrix` — all pairs between two point sets, evaluated in
  row tiles so that memory stays bounded even for large ``m`` — the
  NumPy analogue of the paper's implicit matrix representation.

All functions accept ``gamma``/``degree``/``coef0`` keyword arguments; the
linear kernel ignores them. Gram computations route through BLAS
(``A @ B.T``); the squared distances of the radial kernel use the
``||x||² - 2<x,y> + ||y||²`` expansion with a clip at zero to stay robust
against cancellation.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional, Tuple

import numpy as np

from ..exceptions import InvalidParameterError
from ..types import KernelType

__all__ = [
    "kernel_scalar",
    "kernel_row",
    "kernel_matrix",
    "kernel_diagonal",
    "kernel_matrix_tiles",
    "kernel_flops_per_entry",
    "squared_row_norms",
    "validate_kernel_params",
]


def validate_kernel_params(
    kernel: KernelType, gamma: Optional[float], degree: int, coef0: float
) -> None:
    """Reject parameter combinations the kernel formulas cannot accept."""
    if kernel is KernelType.LINEAR:
        return
    if gamma is None:
        raise InvalidParameterError(
            f"kernel {kernel} requires gamma; resolve it with Parameter.with_gamma_for()"
        )
    if gamma <= 0.0:
        raise InvalidParameterError(f"gamma must be positive, got {gamma}")
    if kernel is KernelType.POLYNOMIAL and degree < 1:
        raise InvalidParameterError(f"degree must be >= 1, got {degree}")


def _gram(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a @ b.T


def squared_row_norms(points: np.ndarray) -> np.ndarray:
    """``||p||²`` per row — the reusable half of the RBF distance expansion.

    The radial kernel's squared distances expand as
    ``||x||² - 2<x,y> + ||y||²``; the norms depend only on the points, so a
    matvec pipeline that sweeps the same rows every CG iteration computes
    them once and passes them back in via ``kernel_matrix(..., a_sq=, b_sq=)``
    instead of recomputing ``O(m d)`` work per tile per sweep.
    """
    pts = _as_2d(points)
    return np.einsum("ij,ij->i", pts, pts)


def _sq_dists(
    a: np.ndarray,
    b: np.ndarray,
    a_sq: Optional[np.ndarray] = None,
    b_sq: Optional[np.ndarray] = None,
) -> np.ndarray:
    aa = (np.einsum("ij,ij->i", a, a) if a_sq is None else a_sq)[:, None]
    bb = (np.einsum("ij,ij->i", b, b) if b_sq is None else b_sq)[None, :]
    d = aa + bb - 2.0 * _gram(a, b)
    np.maximum(d, 0.0, out=d)
    return d


def _linear(a: np.ndarray, b: np.ndarray, gamma, degree, coef0) -> np.ndarray:
    return _gram(a, b)


def _polynomial(a: np.ndarray, b: np.ndarray, gamma, degree, coef0) -> np.ndarray:
    out = _gram(a, b)
    out *= gamma
    out += coef0
    return out ** degree


def _rbf(
    a: np.ndarray,
    b: np.ndarray,
    gamma,
    degree,
    coef0,
    a_sq: Optional[np.ndarray] = None,
    b_sq: Optional[np.ndarray] = None,
) -> np.ndarray:
    out = _sq_dists(a, b, a_sq, b_sq)
    out *= -gamma
    np.exp(out, out=out)
    return out


def _sigmoid(a: np.ndarray, b: np.ndarray, gamma, degree, coef0) -> np.ndarray:
    out = _gram(a, b)
    out *= gamma
    out += coef0
    np.tanh(out, out=out)
    return out


_KERNELS: Dict[KernelType, Callable[..., np.ndarray]] = {
    KernelType.LINEAR: _linear,
    KernelType.POLYNOMIAL: _polynomial,
    KernelType.RBF: _rbf,
    KernelType.SIGMOID: _sigmoid,
}


def _as_2d(x: np.ndarray) -> np.ndarray:
    x = np.asarray(x)
    if x.ndim == 1:
        return x[None, :]
    if x.ndim != 2:
        raise InvalidParameterError(f"points must be 1-D or 2-D, got ndim={x.ndim}")
    return x


def kernel_matrix(
    a: np.ndarray,
    b: np.ndarray,
    kernel: KernelType,
    *,
    gamma: Optional[float] = None,
    degree: int = 3,
    coef0: float = 0.0,
    a_sq: Optional[np.ndarray] = None,
    b_sq: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Dense kernel matrix ``K[i, j] = k(a_i, b_j)`` of shape ``(len(a), len(b))``.

    ``a_sq`` / ``b_sq`` optionally supply precomputed
    :func:`squared_row_norms` of ``a`` / ``b``; only the radial kernel uses
    them (the dot-product kernels have no distance term).
    """
    kernel = KernelType.from_name(kernel)
    validate_kernel_params(kernel, gamma, degree, coef0)
    a2, b2 = _as_2d(a), _as_2d(b)
    if a2.shape[1] != b2.shape[1]:
        raise InvalidParameterError(
            f"feature dimensions differ: {a2.shape[1]} vs {b2.shape[1]}"
        )
    if kernel is KernelType.RBF:
        return _rbf(a2, b2, gamma, degree, coef0, a_sq, b_sq)
    return _KERNELS[kernel](a2, b2, gamma, degree, coef0)


def kernel_row(
    x: np.ndarray,
    points: np.ndarray,
    kernel: KernelType,
    *,
    gamma: Optional[float] = None,
    degree: int = 3,
    coef0: float = 0.0,
) -> np.ndarray:
    """Vector ``[k(x, p) for p in points]`` for a single point ``x``."""
    return kernel_matrix(
        x, points, kernel, gamma=gamma, degree=degree, coef0=coef0
    ).ravel()


def kernel_scalar(
    x: np.ndarray,
    y: np.ndarray,
    kernel: KernelType,
    *,
    gamma: Optional[float] = None,
    degree: int = 3,
    coef0: float = 0.0,
) -> float:
    """Single kernel value ``k(x, y)``."""
    return float(
        kernel_matrix(x, y, kernel, gamma=gamma, degree=degree, coef0=coef0)[0, 0]
    )


def kernel_diagonal(
    points: np.ndarray,
    kernel: KernelType,
    *,
    gamma: Optional[float] = None,
    degree: int = 3,
    coef0: float = 0.0,
) -> np.ndarray:
    """Diagonal ``[k(p, p) for p in points]`` without forming the full matrix.

    Exploits ``k(p, p) = 1`` for the radial kernel and the self-dot shortcut
    for the dot-product kernels.
    """
    kernel = KernelType.from_name(kernel)
    validate_kernel_params(kernel, gamma, degree, coef0)
    pts = _as_2d(points)
    if kernel is KernelType.RBF:
        return np.ones(pts.shape[0], dtype=pts.dtype)
    self_dots = np.einsum("ij,ij->i", pts, pts)
    if kernel is KernelType.LINEAR:
        return self_dots
    if kernel is KernelType.POLYNOMIAL:
        return (gamma * self_dots + coef0) ** degree
    return np.tanh(gamma * self_dots + coef0)


def kernel_matrix_tiles(
    a: np.ndarray,
    b: np.ndarray,
    kernel: KernelType,
    *,
    gamma: Optional[float] = None,
    degree: int = 3,
    coef0: float = 0.0,
    tile_rows: int = 1024,
    a_sq: Optional[np.ndarray] = None,
    b_sq: Optional[np.ndarray] = None,
) -> Iterator[Tuple[slice, np.ndarray]]:
    """Yield ``(row_slice, K[row_slice, :])`` tiles of the kernel matrix.

    This is the memory-bounded evaluation used by the implicit matvec for
    the non-linear kernels: only ``tile_rows * len(b)`` entries are live at
    any time, independent of ``len(a)``, exactly like the paper's
    recompute-per-use strategy (§III-B) avoids storing the ``(m-1)²``
    matrix. ``a_sq`` / ``b_sq`` forward precomputed
    :func:`squared_row_norms` to the radial kernel.
    """
    if tile_rows <= 0:
        raise InvalidParameterError("tile_rows must be positive")
    a2 = _as_2d(a)
    for start in range(0, a2.shape[0], tile_rows):
        rows = slice(start, min(start + tile_rows, a2.shape[0]))
        yield rows, kernel_matrix(
            a2[rows],
            b,
            kernel,
            gamma=gamma,
            degree=degree,
            coef0=coef0,
            a_sq=None if a_sq is None else a_sq[rows],
            b_sq=b_sq,
        )


def kernel_flops_per_entry(kernel: KernelType, num_features: int) -> float:
    """Floating point operations to evaluate one kernel matrix entry.

    Consumed by the simulator's cost model: the dot-product core costs
    ``2d`` FLOPs (multiply + add per feature); the radial kernel's squared
    distance costs ``3d`` (sub, mul, add) plus the exponential, which we
    charge as a fixed 20-FLOP transcendental; the polynomial adds the scale,
    shift and a small power loop.
    """
    kernel = KernelType.from_name(kernel)
    d = float(num_features)
    if kernel is KernelType.LINEAR:
        return 2.0 * d
    if kernel is KernelType.POLYNOMIAL:
        return 2.0 * d + 8.0
    if kernel is KernelType.RBF:
        return 3.0 * d + 20.0
    return 2.0 * d + 20.0
