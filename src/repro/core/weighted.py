"""Weighted (robust) LS-SVM — Suykens et al.'s extension (paper ref. [25]).

The plain LS-SVM's squared loss is sensitive to outliers: every point's
error enters the objective quadratically, so mislabeled points drag the
hyperplane. Suykens' two-stage remedy:

1. fit an unweighted LS-SVM; its multipliers directly expose the per-point
   errors, ``e_i = alpha_i / C`` (from the stationarity condition
   ``alpha_i = C * xi_i``);
2. convert the standardized errors into robustness weights ``v_i`` with a
   Hampel-style score (1 inside ``c1`` robust standard deviations, linearly
   decaying to ``v_min`` at ``c2``, clamped beyond), and refit with the
   per-point ridge ``1 / (C * v_i)`` — outliers get a tiny effective C.

The reduced system machinery accepts per-point ridges directly
(:class:`repro.core.qmatrix.QMatrixBase`'s ``ridge``), so stage 2 is the
same CG solve on a reweighted diagonal.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..exceptions import InvalidParameterError, NotFittedError
from ..parameter import Parameter
from ..types import KernelType
from .cg import conjugate_gradient
from .lssvm import encode_labels
from .model import LSSVMModel
from .qmatrix import EXPLICIT_LIMIT, ExplicitQMatrix, ImplicitQMatrix, recover_bias_and_alpha

__all__ = ["WeightedLSSVC", "hampel_weights"]


def hampel_weights(
    errors: np.ndarray, *, c1: float = 2.5, c2: float = 3.0, v_min: float = 1e-4
) -> np.ndarray:
    """Robustness weights from LS-SVM errors (Suykens et al. 2002).

    The spread estimate is the normalized interquartile range (a robust
    stand-in for the error standard deviation); weights are

    * 1 for ``|e| / s <= c1``,
    * ``(c2 - |e|/s) / (c2 - c1)`` between ``c1`` and ``c2``,
    * ``v_min`` beyond ``c2``.
    """
    if not 0 < c1 < c2:
        raise InvalidParameterError(f"need 0 < c1 < c2, got c1={c1}, c2={c2}")
    if not 0 < v_min <= 1:
        raise InvalidParameterError(f"v_min must lie in (0, 1], got {v_min}")
    errors = np.asarray(errors, dtype=np.float64).ravel()
    q75, q25 = np.percentile(errors, [75, 25])
    spread = (q75 - q25) / 1.349  # IQR -> sigma for a normal distribution
    if spread <= 0:
        return np.ones_like(errors)
    z = np.abs(errors) / spread
    weights = np.where(
        z <= c1, 1.0, np.where(z <= c2, (c2 - z) / (c2 - c1), v_min)
    )
    return np.maximum(weights, v_min)


class WeightedLSSVC:
    """Two-stage robust LS-SVM classifier.

    Parameters
    ----------
    kernel, C, gamma, degree, coef0, epsilon:
        As in :class:`repro.core.lssvm.LSSVC`.
    c1, c2, v_min:
        Hampel weight breakpoints (defaults from Suykens et al.).
    stages:
        Number of reweighting passes (1 = plain LS-SVM, 2 = the published
        scheme; more passes iterate the reweighting).
    """

    def __init__(
        self,
        kernel: Union[str, int, KernelType] = "linear",
        C: float = 1.0,
        *,
        gamma: Optional[float] = None,
        degree: int = 3,
        coef0: float = 0.0,
        epsilon: float = 1e-6,
        c1: float = 2.5,
        c2: float = 3.0,
        v_min: float = 1e-4,
        stages: int = 2,
        implicit: Optional[bool] = None,
    ) -> None:
        if stages < 1:
            raise InvalidParameterError("stages must be >= 1")
        self.param = Parameter(
            kernel=kernel, cost=C, gamma=gamma, degree=degree, coef0=coef0,
            epsilon=epsilon,
        )
        self.c1, self.c2, self.v_min = c1, c2, v_min
        self.stages = int(stages)
        self.implicit = implicit
        self.model_: Optional[LSSVMModel] = None
        self.weights_: Optional[np.ndarray] = None

    def _solve(self, X: np.ndarray, y_enc: np.ndarray, ridge: Optional[np.ndarray]):
        implicit = self.implicit
        if implicit is None:
            implicit = X.shape[0] > EXPLICIT_LIMIT
        cls = ImplicitQMatrix if implicit else ExplicitQMatrix
        qmat = cls(X, y_enc, self.param, ridge=ridge)
        result = conjugate_gradient(
            qmat, qmat.rhs(), epsilon=self.param.epsilon,
            warn_on_no_convergence=False,
        )
        alpha, bias = recover_bias_and_alpha(qmat, result.x)
        return qmat, alpha, bias

    def fit(self, X: np.ndarray, y: np.ndarray) -> "WeightedLSSVC":
        X = np.asarray(X, dtype=self.param.dtype)
        y_enc, labels = encode_labels(y)
        weights = np.ones(X.shape[0], dtype=np.float64)
        qmat = alpha = bias = None
        for stage in range(self.stages):
            ridge = 1.0 / (self.param.cost * weights)
            qmat, alpha, bias = self._solve(X, y_enc, ridge)
            if stage + 1 < self.stages:
                errors = alpha * ridge  # e_i = alpha_i / (C v_i)
                weights = hampel_weights(
                    errors, c1=self.c1, c2=self.c2, v_min=self.v_min
                )
        self.weights_ = weights
        self.model_ = LSSVMModel(
            support_vectors=qmat.X,
            alpha=alpha,
            bias=bias,
            param=qmat.param,
            labels=labels,
        )
        return self

    def _require_model(self) -> LSSVMModel:
        if self.model_ is None:
            raise NotFittedError("WeightedLSSVC is not fitted yet; call fit() first")
        return self.model_

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        return self._require_model().decision_function(X)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self._require_model().predict(X)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        return self._require_model().score(X, y)
