"""sklearn-conformant estimator plumbing: ``get_params``/``set_params``/``clone``.

Every estimator in this package (``LSSVC``, ``LSSVR``, the multiclass
wrappers) stores each constructor argument under an attribute of the same
name and derives its internal state (``Parameter`` objects, normalized
enums, resolved backends) in a ``_sync_params()`` hook. That invariant is
what lets :class:`ParamsMixin` implement the scikit-learn parameter
protocol generically by introspecting ``__init__`` — and what lets
:func:`clone` and :func:`repro.model_selection` treat every estimator
uniformly instead of special-casing constructor signatures.
"""

from __future__ import annotations

import inspect
from typing import Dict, List

from ..exceptions import InvalidParameterError

__all__ = ["ParamsMixin", "clone"]


class ParamsMixin:
    """Implements ``get_params``/``set_params`` via ``__init__`` introspection.

    Requirements on the concrete estimator:

    * ``__init__`` has an explicit signature (no bare ``*args``/``**kwargs``)
      and stores every argument under ``self.<name>`` — normalized forms
      are fine as long as the constructor accepts them back (enums parsed
      by ``from_name``, ints coerced from floats, ...);
    * derived state is (re)built by :meth:`_sync_params`, which
      :meth:`set_params` calls after updating attributes so validation and
      invalidation (e.g. of a cached backend instance) run exactly as they
      would at construction.
    """

    @classmethod
    def _get_param_names(cls) -> List[str]:
        signature = inspect.signature(cls.__init__)
        names = []
        for name, parameter in signature.parameters.items():
            if name == "self":
                continue
            if parameter.kind in (
                inspect.Parameter.VAR_POSITIONAL,
                inspect.Parameter.VAR_KEYWORD,
            ):
                raise TypeError(
                    f"{cls.__name__}.__init__ must have an explicit signature "
                    "(no *args/**kwargs) for the estimator parameter protocol"
                )
            names.append(name)
        return sorted(names)

    def get_params(self, deep: bool = True) -> Dict[str, object]:
        """Constructor parameters of this estimator, keyed by name.

        ``deep`` is accepted for scikit-learn compatibility; these
        estimators have no nested sub-estimator parameters to expand.
        """
        return {name: getattr(self, name) for name in self._get_param_names()}

    def set_params(self, **params) -> "ParamsMixin":
        """Update parameters in place; unknown names raise.

        Runs :meth:`_sync_params` once after all updates, so derived state
        is rebuilt and cross-parameter validation sees the final values.
        """
        if not params:
            return self
        valid = self._get_param_names()
        for name in params:
            if name not in valid:
                raise InvalidParameterError(
                    f"invalid parameter {name!r} for estimator "
                    f"{type(self).__name__}; valid parameters: {valid}"
                )
        for name, value in params.items():
            setattr(self, name, value)
        self._sync_params()
        return self

    def _sync_params(self) -> None:
        """Rebuild derived state after a parameter change (default: nothing)."""


def clone(estimator):
    """A fresh unfitted estimator with the same parameters.

    The round-trip contract: ``type(est)(**est.get_params())`` must
    construct an estimator whose ``get_params()`` compares equal — which
    holds because estimators store (possibly normalized) constructor
    arguments that their constructors accept back unchanged.
    """
    params = estimator.get_params()
    return type(estimator)(**params)
