"""sklearn-conformant estimator plumbing: ``get_params``/``set_params``/``clone``.

Every estimator in this package (``LSSVC``, ``LSSVR``, the multiclass
wrappers) stores each constructor argument under an attribute of the same
name and derives its internal state (``Parameter`` objects, normalized
enums, resolved backends) in a ``_sync_params()`` hook. That invariant is
what lets :class:`ParamsMixin` implement the scikit-learn parameter
protocol generically by introspecting ``__init__`` — and what lets
:func:`clone` and :func:`repro.model_selection` treat every estimator
uniformly instead of special-casing constructor signatures.
"""

from __future__ import annotations

import inspect
import warnings
from typing import Dict, List, Optional

from ..exceptions import InvalidParameterError

__all__ = ["ParamsMixin", "clone", "apply_config", "warn_deprecated_flat_kwargs"]


def _init_defaults(cls) -> Dict[str, object]:
    """Constructor defaults of ``cls`` keyed by parameter name."""
    out = {}
    for name, parameter in inspect.signature(cls.__init__).parameters.items():
        if name != "self" and parameter.default is not inspect.Parameter.empty:
            out[name] = parameter.default
    return out


def apply_config(estimator, config, *, supported: Optional[tuple] = None) -> None:
    """Overlay a :class:`~repro.parameter.SolverConfig` /
    :class:`~repro.parameter.ResourceConfig` onto the flat attributes.

    The config object is authoritative: every field it carries is written
    over the estimator attribute of the same name, so downstream
    ``_sync_params`` logic keeps reading the flat attributes it always
    read. Estimators that only support a subset of the group pass
    ``supported``; a non-default value for an unsupported field raises
    instead of being silently dropped.
    """
    if config is None:
        return
    cls = type(config)
    for name in cls.fields:
        value = getattr(config, name)
        if supported is not None and name not in supported:
            default = cls.__dataclass_fields__[name].default
            if value != default:
                raise InvalidParameterError(
                    f"{type(estimator).__name__} does not support "
                    f"{cls.__name__}.{name}"
                )
            continue
        setattr(estimator, name, value)


def warn_deprecated_flat_kwargs(estimator, *configs) -> None:
    """Emit one ``DeprecationWarning`` for flat grouped keywords.

    Called from ``__init__`` after attributes are set: any attribute that
    belongs to a config group, differs from the constructor default, and
    is not explained by a passed config carrying the same value must have
    arrived as a flat keyword — the deprecated spelling. Config-built
    estimators (and their clones, whose flat attributes were overwritten
    by :func:`apply_config`) stay silent.
    """
    defaults = _init_defaults(type(estimator))
    stale = []
    for config_cls, config in configs:
        for name in config_cls.fields:
            if name not in defaults:
                continue
            value = getattr(estimator, name, defaults[name])
            if _values_equal(value, defaults[name]):
                continue
            if config is not None and _values_equal(
                getattr(config, name, None), value
            ):
                continue
            stale.append(f"{name} ({config_cls.__name__})")
    if stale:
        warnings.warn(
            f"passing {', '.join(stale)} as flat keyword argument(s) to "
            f"{type(estimator).__name__} is deprecated; group them into "
            "SolverConfig / ResourceConfig via config= / resources=",
            DeprecationWarning,
            stacklevel=3,
        )


def _values_equal(a, b) -> bool:
    try:
        return bool(a == b)
    except Exception:
        return a is b


class ParamsMixin:
    """Implements ``get_params``/``set_params`` via ``__init__`` introspection.

    Requirements on the concrete estimator:

    * ``__init__`` has an explicit signature (no bare ``*args``/``**kwargs``)
      and stores every argument under ``self.<name>`` — normalized forms
      are fine as long as the constructor accepts them back (enums parsed
      by ``from_name``, ints coerced from floats, ...);
    * derived state is (re)built by :meth:`_sync_params`, which
      :meth:`set_params` calls after updating attributes so validation and
      invalidation (e.g. of a cached backend instance) run exactly as they
      would at construction.
    """

    @classmethod
    def _get_param_names(cls) -> List[str]:
        signature = inspect.signature(cls.__init__)
        names = []
        for name, parameter in signature.parameters.items():
            if name == "self":
                continue
            if parameter.kind in (
                inspect.Parameter.VAR_POSITIONAL,
                inspect.Parameter.VAR_KEYWORD,
            ):
                raise TypeError(
                    f"{cls.__name__}.__init__ must have an explicit signature "
                    "(no *args/**kwargs) for the estimator parameter protocol"
                )
            names.append(name)
        return sorted(names)

    def get_params(self, deep: bool = True) -> Dict[str, object]:
        """Constructor parameters of this estimator, keyed by name.

        ``deep`` is accepted for scikit-learn compatibility; these
        estimators have no nested sub-estimator parameters to expand.
        """
        return {name: getattr(self, name) for name in self._get_param_names()}

    def set_params(self, **params) -> "ParamsMixin":
        """Update parameters in place; unknown names raise.

        Runs :meth:`_sync_params` once after all updates, so derived state
        is rebuilt and cross-parameter validation sees the final values.
        """
        if not params:
            return self
        valid = self._get_param_names()
        for name in params:
            if name not in valid:
                raise InvalidParameterError(
                    f"invalid parameter {name!r} for estimator "
                    f"{type(self).__name__}; valid parameters: {valid}"
                )
        for name, value in params.items():
            setattr(self, name, value)
        self._sync_params()
        return self

    def _sync_params(self) -> None:
        """Rebuild derived state after a parameter change (default: nothing)."""


def clone(estimator):
    """A fresh unfitted estimator with the same parameters.

    The round-trip contract: ``type(est)(**est.get_params())`` must
    construct an estimator whose ``get_params()`` compares equal — which
    holds because estimators store (possibly normalized) constructor
    arguments that their constructors accept back unchanged.
    """
    params = estimator.get_params()
    return type(estimator)(**params)
