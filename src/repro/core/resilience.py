"""Fault-tolerant CG driving: checkpointed restart, retry, device failover.

The paper's multi-GPU execution model (§III-C5/§III-D) statically splits
the feature dimension across devices and assumes every device survives the
whole solve. This module relaxes that assumption for the simulated
execution layer:

* a :class:`~repro.exceptions.TransientDeviceError` (a recoverable hiccup —
  an ECC retry, a watchdog reset) is retried with bounded exponential
  backoff, resuming from the solver's last
  :class:`~repro.core.cg.CGCheckpoint` rather than iteration 0;
* a :class:`~repro.exceptions.DeviceLostError` (the card is gone) triggers
  *graceful degradation*: the operator's ``handle_device_loss`` hook
  re-runs the feature-wise split over the surviving devices, re-uploads
  the data slabs, and the solve resumes from the last checkpoint on the
  shrunken device set.

Because the checkpoint captures the complete recurrence state, a recovered
solve converges to the same solution an undisturbed solve produces (bit
for bit when the surviving operator computes identical partial sums;
within solver tolerance when the device set — and hence the partial-sum
reduction order — changed).

All recovery activity is reported through the active
:class:`repro.telemetry.TelemetryContext`: the familiar counters
(``devices_lost``, ``redistributions``, ``checkpoint_restores``,
``transient_retries``, ``backoff_seconds``) plus one audit-log entry per
event, so a fit's ``report_`` carries the full fault/recovery timeline.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

import numpy as np

from ..exceptions import DeviceLostError, InvalidParameterError, TransientDeviceError
from ..telemetry.context import current_context
from .cg import (
    BlockCGResult,
    CGCheckpoint,
    CGResult,
    LinearOperatorLike,
    conjugate_gradient,
    conjugate_gradient_block,
)

__all__ = ["resilient_solve", "DEFAULT_CHECKPOINT_INTERVAL"]

#: Checkpoint cadence used when the caller enables resilience without
#: choosing one. Snapshots are cheap (a few dense vectors), so a tight
#: cadence loses little and bounds replayed work to 10 iterations.
DEFAULT_CHECKPOINT_INTERVAL = 10


def _recover_device_loss(A, exc: DeviceLostError) -> None:
    """Redistribute work away from the device named in ``exc``.

    Delegates to the operator's ``handle_device_loss`` hook; re-raises when
    the operator has none (plain NumPy operators cannot lose devices — if
    they raise ``DeviceLostError`` something is wired wrong) or the error
    does not identify a device. Cascading losses — another device dying
    *during* redistribution — are handled by recovering again, until the
    operator reports that no devices remain.
    """
    ctx = current_context()
    while True:
        handler = getattr(A, "handle_device_loss", None)
        if handler is None or exc.device is None:
            raise exc
        ctx.inc("devices_lost")
        ctx.record_fault_event(
            "device_lost",
            device=getattr(exc.device, "name", str(exc.device)),
            message=str(exc),
        )
        try:
            handler(exc.device)
        except DeviceLostError as cascade:
            if cascade.device is None or cascade.device is exc.device:
                raise
            exc = cascade
            continue
        ctx.inc("redistributions")
        ctx.record_fault_event("redistribution", survivors=_survivor_count(A))
        return


def _survivor_count(A) -> Optional[int]:
    devices = getattr(A, "devices", None)
    return len(devices) if devices is not None else None


def resilient_solve(
    A: Union[np.ndarray, LinearOperatorLike],
    b: np.ndarray,
    *,
    max_retries: int = 3,
    backoff_base_s: float = 0.05,
    backoff_factor: float = 2.0,
    checkpoint_interval: Optional[int] = DEFAULT_CHECKPOINT_INTERVAL,
    sleep: Optional[Callable[[float], None]] = None,
    **solver_kwargs,
) -> Union[CGResult, BlockCGResult]:
    """Solve ``A @ x = b`` by CG, surviving injected device faults.

    A thin driver around :func:`~repro.core.cg.conjugate_gradient` (1-D
    ``b``) or :func:`~repro.core.cg.conjugate_gradient_block` (2-D ``b``):
    the solver runs with checkpointing enabled, and whenever a device fault
    escapes, the driver recovers and re-enters the solver from the last
    checkpoint.

    Parameters
    ----------
    A, b:
        As for the underlying solver.
    max_retries:
        Consecutive unproductive transient-fault retries tolerated before
        the fault is promoted to a :class:`~repro.exceptions.DeviceLostError`.
        The budget resets whenever a retry makes progress (the checkpoint
        iteration advanced), so long solves under a constant low fault rate
        still finish.
    backoff_base_s / backoff_factor:
        Exponential backoff schedule for transient faults: attempt ``i``
        (0-based within a no-progress streak) waits
        ``backoff_base_s * backoff_factor**i`` seconds. The delay is always
        accounted in the ``backoff_seconds`` telemetry counter; it is actually
        slept only when a ``sleep`` callable is given — the default
        ``None`` suits simulated hardware, where wall-clock waiting buys
        nothing.
    checkpoint_interval:
        Forwarded to the solver (default
        :data:`DEFAULT_CHECKPOINT_INTERVAL`); ``None`` disables
        checkpointing, making every recovery restart from iteration 0.
    sleep:
        Optional ``sleep(seconds)`` used to realize backoff delays (e.g.
        ``time.sleep`` on real hardware).
    **solver_kwargs:
        Passed through to the underlying solver (``epsilon``, ``max_iter``,
        ``preconditioner``, ...).

    Returns
    -------
    :class:`~repro.core.cg.CGResult` or :class:`~repro.core.cg.BlockCGResult`
        Whatever the underlying solver returns.

    Raises
    ------
    DeviceLostError
        When recovery is impossible: the operator has no
        ``handle_device_loss`` hook, no devices survive, or transient
        faults persist past ``max_retries`` without progress.
    """
    if max_retries < 0:
        raise InvalidParameterError(f"max_retries must be >= 0, got {max_retries}")
    if backoff_base_s < 0:
        raise InvalidParameterError("backoff_base_s must be non-negative")
    if backoff_factor < 1.0:
        raise InvalidParameterError("backoff_factor must be >= 1")

    b_arr = np.asarray(b)
    if b_arr.ndim <= 1:
        solver = conjugate_gradient
    else:
        solver = conjugate_gradient_block

    ctx = current_context()
    ckpt: Optional[CGCheckpoint] = None
    transient_streak = 0
    while True:
        try:
            return solver(
                A,
                b,
                checkpoint_interval=checkpoint_interval,
                checkpoint=ckpt,
                **solver_kwargs,
            )
        except TransientDeviceError as exc:
            new_ckpt = exc.checkpoint
            progressed = new_ckpt is not None and (
                ckpt is None or new_ckpt.iteration > ckpt.iteration
            )
            ckpt = new_ckpt if new_ckpt is not None else ckpt
            transient_streak = 0 if progressed else transient_streak + 1
            if transient_streak > max_retries:
                raise DeviceLostError(
                    f"transient faults persisted after {max_retries} retries "
                    f"without progress: {exc}",
                    device=exc.device,
                ) from exc
            delay = backoff_base_s * backoff_factor ** max(transient_streak - 1, 0)
            ctx.inc("transient_retries")
            ctx.inc("backoff_seconds", delay)
            ctx.record_fault_event(
                "transient_retry",
                device=getattr(exc.device, "name", None),
                streak=transient_streak,
                backoff_s=delay,
                progressed=progressed,
                message=str(exc),
            )
            if sleep is not None and delay > 0:
                sleep(delay)
        except DeviceLostError as exc:
            if exc.checkpoint is not None:
                ckpt = exc.checkpoint
            _recover_device_loss(A, exc)
            transient_streak = 0
        if ckpt is not None:
            ctx.inc("checkpoint_restores")
            ctx.record_fault_event("checkpoint_restore", iteration=ckpt.iteration)
