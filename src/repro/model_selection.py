"""Cross-validation and grid search (LIBSVM workflow parity).

LIBSVM ships k-fold cross validation (``svm-train -v k``) and a ``grid.py``
utility sweeping ``(C, gamma)`` pairs; PLSSVM inherits the need for both.
This module provides them estimator-agnostically: anything exposing
``fit(X, y)`` and ``score(X, y)`` works — :class:`repro.core.lssvm.LSSVC`,
the SMO baselines, the weighted/sparse/multiclass variants, and
:class:`repro.core.regression.LSSVR` (whose score is R^2).

Solver knobs sweep like hyper-parameters: bake them into the factory /
grid, e.g. ``GridSearch(lambda **kw: LSSVC(precondition="nystrom",
compute_dtype="float32", **kw), ...)`` runs every fold with
Nyström-preconditioned CG on float32 kernel tiles — the fold scores are
unchanged (both knobs preserve the solution to the CG tolerance) while
ill-conditioned grid corners converge in far fewer iterations.

Since the estimators implement the scikit-learn parameter protocol
(``get_params``/``set_params``, see :mod:`repro.core.estimator`), an
**estimator instance** works wherever a factory does: it is treated as a
prototype, cloned per fold / per grid point, and grid parameters are
applied with ``set_params`` — no constructor special-casing.
"""

from __future__ import annotations

import dataclasses
import itertools
import time
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from .exceptions import DataError

__all__ = [
    "kfold_indices",
    "cross_val_score",
    "GridSearch",
    "GridPoint",
    "RankTrial",
    "RankTuningResult",
    "tune_solver_rank",
]


def kfold_indices(
    num_samples: int, k: int, *, rng: Union[None, int, np.random.Generator] = None
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Shuffled k-fold partition: a list of ``(train_idx, test_idx)`` pairs.

    Folds differ in size by at most one sample; every sample appears in
    exactly one test fold.
    """
    if k < 2:
        raise DataError("k-fold cross validation requires k >= 2")
    if num_samples < k:
        raise DataError(f"cannot split {num_samples} samples into {k} folds")
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    order = gen.permutation(num_samples)
    folds = np.array_split(order, k)
    out = []
    for i in range(k):
        test = np.sort(folds[i])
        train = np.sort(np.concatenate([folds[j] for j in range(k) if j != i]))
        out.append((train, test))
    return out


def _as_factory(estimator: Union[Callable[..., object], object]) -> Callable[..., object]:
    """Normalize factory-or-prototype into a factory taking kwargs.

    Accepted forms:

    * a callable factory (``lambda **p: LSSVC(**p)``, or an estimator
      class) — returned as-is;
    * an **estimator instance** implementing ``get_params``/``set_params``
      — wrapped so each call clones the prototype and applies the given
      keyword overrides via ``set_params``.
    """
    if isinstance(estimator, type) or not hasattr(estimator, "fit"):
        if callable(estimator):
            return estimator
        raise DataError(
            "estimator must be a factory callable or an estimator instance "
            f"with fit(); got {type(estimator).__name__}"
        )
    if not hasattr(estimator, "get_params"):
        raise DataError(
            f"estimator instance {type(estimator).__name__} does not implement "
            "get_params(); pass a factory callable instead"
        )
    from .core.estimator import clone

    def factory(**overrides):
        fresh = clone(estimator)
        if overrides:
            fresh.set_params(**overrides)
        return fresh

    return factory


def cross_val_score(
    estimator_factory: Union[Callable[[], object], object],
    X: np.ndarray,
    y: np.ndarray,
    *,
    k: int = 5,
    rng: Union[None, int, np.random.Generator] = None,
    n_threads: Optional[int] = None,
) -> np.ndarray:
    """Per-fold test scores of a freshly constructed estimator.

    ``estimator_factory`` is either a callable returning a *new* estimator
    per call (fitted state must not leak across folds) or an unfitted
    estimator instance used as a prototype and cloned per fold.

    ``n_threads > 1`` evaluates folds concurrently on a
    :class:`repro.parallel.ThreadPool`: each fold's fit is dominated by
    GIL-releasing BLAS work, so folds overlap on multi-core hosts. Fold
    assignment (and therefore every score) is identical to the serial
    path — the partition is drawn before any fold runs.
    """
    X = np.asarray(X)
    y = np.asarray(y).ravel()
    if X.shape[0] != y.shape[0]:
        raise DataError("data and labels disagree in length")
    folds = kfold_indices(X.shape[0], k, rng=rng)
    factory = _as_factory(estimator_factory)

    def run_fold(fold: Tuple[np.ndarray, np.ndarray]) -> float:
        train_idx, test_idx = fold
        estimator = factory()
        estimator.fit(X[train_idx], y[train_idx])
        return float(estimator.score(X[test_idx], y[test_idx]))

    if n_threads is not None and n_threads > 1:
        from .parallel.thread_pool import ThreadPool

        with ThreadPool(n_threads) as pool:
            scores = pool.map_tasks(run_fold, folds)
    else:
        scores = [run_fold(fold) for fold in folds]
    return np.asarray(scores, dtype=np.float64)


@dataclasses.dataclass
class GridPoint:
    """One evaluated parameter combination."""

    params: Dict[str, object]
    mean_score: float
    std_score: float
    fold_scores: np.ndarray


class GridSearch:
    """Exhaustive cross-validated parameter sweep (grid.py equivalent).

    Parameters
    ----------
    estimator_factory:
        Callable taking the grid parameters as keyword arguments and
        returning a fresh estimator, e.g.
        ``lambda **p: LSSVC(kernel="rbf", **p)`` — or an unfitted
        estimator instance used as a prototype (cloned per grid point,
        grid parameters applied via ``set_params``).
    param_grid:
        Mapping from parameter name to the values to sweep; the grid is
        the cartesian product. LIBSVM's classic grid is exponential in
        both axes: ``{"C": 2.0**np.arange(-5, 16, 2), "gamma": ...}``.
    k:
        Cross-validation folds per grid point.
    n_threads:
        Fold-level parallelism forwarded to :func:`cross_val_score`.
    """

    def __init__(
        self,
        estimator_factory: Union[Callable[..., object], object],
        param_grid: Dict[str, Iterable],
        *,
        k: int = 5,
        rng: Union[None, int] = 0,
        n_threads: Optional[int] = None,
    ) -> None:
        if not param_grid:
            raise DataError("param_grid must name at least one parameter")
        self._factory = _as_factory(estimator_factory)
        self.param_grid = {name: list(values) for name, values in param_grid.items()}
        for name, values in self.param_grid.items():
            if not values:
                raise DataError(f"parameter {name!r} has no candidate values")
        self.k = int(k)
        self.rng = rng
        self.n_threads = n_threads
        self.results_: List[GridPoint] = []
        self.best_: Optional[GridPoint] = None
        self.best_estimator_: Optional[object] = None

    def _combinations(self) -> Sequence[Dict[str, object]]:
        names = list(self.param_grid)
        return [
            dict(zip(names, combo))
            for combo in itertools.product(*(self.param_grid[n] for n in names))
        ]

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GridSearch":
        """Evaluate the full grid, then refit the best point on all data."""
        self.results_ = []
        for params in self._combinations():
            scores = cross_val_score(
                lambda params=params: self._factory(**params),
                X,
                y,
                k=self.k,
                rng=self.rng,
                n_threads=self.n_threads,
            )
            self.results_.append(
                GridPoint(
                    params=params,
                    mean_score=float(scores.mean()),
                    std_score=float(scores.std()),
                    fold_scores=scores,
                )
            )
        self.best_ = max(self.results_, key=lambda p: p.mean_score)
        self.best_estimator_ = self._factory(**self.best_.params)
        self.best_estimator_.fit(X, y)
        return self

    @property
    def best_params_(self) -> Dict[str, object]:
        if self.best_ is None:
            raise DataError("GridSearch is not fitted yet; call fit() first")
        return self.best_.params

    @property
    def best_score_(self) -> float:
        if self.best_ is None:
            raise DataError("GridSearch is not fitted yet; call fit() first")
        return self.best_.mean_score

    def predict(self, X: np.ndarray):
        if self.best_estimator_ is None:
            raise DataError("GridSearch is not fitted yet; call fit() first")
        return self.best_estimator_.predict(X)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        if self.best_estimator_ is None:
            raise DataError("GridSearch is not fitted yet; call fit() first")
        return self.best_estimator_.score(X, y)


@dataclasses.dataclass
class RankTrial:
    """One evaluated ``(solver, rank)`` candidate of :func:`tune_solver_rank`."""

    solver: str
    rank: int
    mean_score: float
    std_score: float
    fit_seconds: float
    fold_scores: np.ndarray


@dataclasses.dataclass
class RankTuningResult:
    """Outcome of the speed-vs-accuracy rank auto-tuner.

    ``rank`` is the chosen rank, ``solver`` the strategy it applies to;
    ``baseline`` is the exact-CG reference trial, ``trials`` the sweep in
    ascending rank order. ``within_tolerance`` says whether the chosen
    rank met the accuracy budget (otherwise the best-scoring rank was
    returned as a fallback).
    """

    solver: str
    rank: int
    within_tolerance: bool
    baseline: RankTrial
    trials: List[RankTrial]

    @property
    def speedup(self) -> float:
        """Cross-validated fit-time speedup of the chosen rank over exact CG."""
        chosen = next(t for t in self.trials if t.rank == self.rank)
        if chosen.fit_seconds <= 0.0:
            return float("inf")
        return self.baseline.fit_seconds / chosen.fit_seconds


def _default_rank_ladder(num_samples: int, k: int) -> List[int]:
    """Geometric rank candidates from coarse up to 4x the default rank.

    The ladder deliberately overshoots the strategy's default: when the
    spectrum decays slowly the default rank misses the accuracy budget,
    and the tuner's job is to discover how much more rank that budget
    costs.
    """
    from .core.solvers import default_solver_rank

    train_size = max(num_samples - num_samples // k, 2)
    default = default_solver_rank(train_size)
    top = min(4 * default, train_size - 1)
    ladder = []
    rank = max(default // 8, 8)
    while rank < top:
        ladder.append(min(rank, train_size - 1))
        rank *= 2
    ladder.append(top)
    return sorted(set(ladder))


def tune_solver_rank(
    estimator: Union[Callable[..., object], object],
    X: np.ndarray,
    y: np.ndarray,
    *,
    solver: str = "nystrom",
    ranks: Optional[Sequence[int]] = None,
    k: int = 3,
    rng: Union[None, int] = 0,
    max_accuracy_drop: float = 0.01,
    n_threads: Optional[int] = None,
) -> RankTuningResult:
    """Pick the smallest solver rank within an accuracy budget.

    Cross-validates the exact-CG baseline once, then sweeps ``ranks``
    (ascending; a geometric ladder up to the strategy's default rank when
    omitted) with the requested randomized ``solver`` and returns the
    smallest rank whose mean CV score stays within ``max_accuracy_drop``
    of the baseline — the speed-vs-accuracy knee. If no rank qualifies,
    the best-scoring rank is returned with ``within_tolerance=False``.

    ``estimator`` follows the factory-or-prototype convention of
    :func:`cross_val_score`; solver parameters are applied on top, so a
    plain ``LSSVC(kernel="rbf", C=10)`` prototype works directly.
    """
    from .core.solvers import resolve_solver

    solver = resolve_solver(solver)
    if solver == "cg":
        raise DataError("tune_solver_rank tunes the randomized strategies; "
                        "solver must be 'nystrom' or 'rff'")
    if max_accuracy_drop < 0:
        raise DataError("max_accuracy_drop must be non-negative")
    X = np.asarray(X)
    y = np.asarray(y).ravel()
    factory = _as_factory(estimator)
    if ranks is None:
        ranks = _default_rank_ladder(X.shape[0], k)
    ranks = sorted({int(r) for r in ranks})
    if not ranks or ranks[0] < 1:
        raise DataError("ranks must be positive integers")

    def trial(**solver_params) -> Tuple[np.ndarray, float]:
        start = time.perf_counter()
        scores = cross_val_score(
            lambda: factory(**solver_params),
            X, y, k=k, rng=rng, n_threads=n_threads,
        )
        return scores, time.perf_counter() - start

    base_scores, base_seconds = trial(solver="cg")
    baseline = RankTrial(
        solver="cg",
        rank=0,
        mean_score=float(base_scores.mean()),
        std_score=float(base_scores.std()),
        fit_seconds=base_seconds,
        fold_scores=base_scores,
    )
    trials: List[RankTrial] = []
    for rank in ranks:
        scores, seconds = trial(solver=solver, solver_rank=rank)
        trials.append(
            RankTrial(
                solver=solver,
                rank=rank,
                mean_score=float(scores.mean()),
                std_score=float(scores.std()),
                fit_seconds=seconds,
                fold_scores=scores,
            )
        )
    floor = baseline.mean_score - max_accuracy_drop
    for t in trials:
        if t.mean_score >= floor:
            return RankTuningResult(
                solver=solver, rank=t.rank, within_tolerance=True,
                baseline=baseline, trials=trials,
            )
    best = max(trials, key=lambda t: t.mean_score)
    return RankTuningResult(
        solver=solver, rank=best.rank, within_tolerance=False,
        baseline=baseline, trials=trials,
    )
