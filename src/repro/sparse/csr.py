"""A self-contained Compressed Sparse Row matrix.

Only the operations the sparse CG path needs are implemented — forward and
transposed matrix-vector products, row slicing for the eliminated point,
and conversions — keeping the substrate free of external sparse libraries.
The products are fully vectorized: the forward product gathers and
segment-sums with ``numpy.add.reduceat``; the transposed product scatters
with ``numpy.add.at``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..exceptions import DataError

__all__ = ["CSRMatrix"]


class CSRMatrix:
    """CSR matrix over float64 values.

    Attributes
    ----------
    indptr, indices, data:
        The classic CSR triplet; ``indptr`` has ``num_rows + 1`` entries.
    shape:
        ``(num_rows, num_cols)``.
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        shape: Tuple[int, int],
    ) -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data, dtype=np.float64)
        self.shape = (int(shape[0]), int(shape[1]))
        self._validate()

    def _validate(self) -> None:
        rows, cols = self.shape
        if rows < 0 or cols < 0:
            raise DataError("matrix shape must be non-negative")
        if self.indptr.shape[0] != rows + 1:
            raise DataError(
                f"indptr has {self.indptr.shape[0]} entries for {rows} rows"
            )
        if self.indptr[0] != 0 or np.any(np.diff(self.indptr) < 0):
            raise DataError("indptr must start at 0 and be non-decreasing")
        nnz = int(self.indptr[-1])
        if self.indices.shape[0] != nnz or self.data.shape[0] != nnz:
            raise DataError("indices/data length disagrees with indptr")
        if nnz and (self.indices.min() < 0 or self.indices.max() >= cols):
            raise DataError("column index out of range")

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRMatrix":
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise DataError("from_dense expects a 2-D array")
        mask = dense != 0.0
        counts = mask.sum(axis=1)
        indptr = np.zeros(dense.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        rows, cols = np.nonzero(mask)
        return cls(indptr, cols, dense[rows, cols], dense.shape)

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=np.float64)
        for i in range(self.shape[0]):
            lo, hi = self.indptr[i], self.indptr[i + 1]
            out[i, self.indices[lo:hi]] = self.data[lo:hi]
        return out

    # -- properties --------------------------------------------------------------

    @property
    def nnz(self) -> int:
        return int(self.indptr[-1])

    @property
    def density(self) -> float:
        total = self.shape[0] * self.shape[1]
        return self.nnz / total if total else 0.0

    @property
    def nbytes(self) -> int:
        return self.indptr.nbytes + self.indices.nbytes + self.data.nbytes

    # -- products -----------------------------------------------------------------

    def matvec(self, v: np.ndarray) -> np.ndarray:
        """``A @ v`` in O(nnz)."""
        v = np.asarray(v, dtype=np.float64).ravel()
        if v.shape[0] != self.shape[1]:
            raise DataError(
                f"vector length {v.shape[0]} does not match {self.shape[1]} columns"
            )
        if self.nnz == 0:
            return np.zeros(self.shape[0])
        gathered = np.concatenate([self.data * v[self.indices], [0.0]])
        sums = np.add.reduceat(gathered, self.indptr[:-1])
        return sums * (np.diff(self.indptr) > 0)

    def rmatvec(self, v: np.ndarray) -> np.ndarray:
        """``A.T @ v`` in O(nnz)."""
        v = np.asarray(v, dtype=np.float64).ravel()
        if v.shape[0] != self.shape[0]:
            raise DataError(
                f"vector length {v.shape[0]} does not match {self.shape[0]} rows"
            )
        out = np.zeros(self.shape[1], dtype=np.float64)
        if self.nnz == 0:
            return out
        row_of = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
        np.add.at(out, self.indices, self.data * v[row_of])
        return out

    def row(self, i: int) -> np.ndarray:
        """Row ``i`` as a dense vector."""
        if not 0 <= i < self.shape[0]:
            raise DataError(f"row index {i} out of range")
        out = np.zeros(self.shape[1], dtype=np.float64)
        lo, hi = self.indptr[i], self.indptr[i + 1]
        out[self.indices[lo:hi]] = self.data[lo:hi]
        return out

    def head(self, num_rows: int) -> "CSRMatrix":
        """The first ``num_rows`` rows as a new CSR matrix (O(1) views)."""
        if not 0 <= num_rows <= self.shape[0]:
            raise DataError(f"cannot take {num_rows} rows of {self.shape[0]}")
        end = int(self.indptr[num_rows])
        return CSRMatrix(
            self.indptr[: num_rows + 1],
            self.indices[:end],
            self.data[:end],
            (num_rows, self.shape[1]),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"density={self.density:.4f})"
        )
