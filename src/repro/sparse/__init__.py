"""Sparse data structures for the CG solver (paper §V future work).

PLSSVM v1.0.1 densifies sparse inputs ("in the case of very sparse data
sets ... it is therefore better to use ThunderSVM", §V) and names sparse
CG support as a canonical next step. This package delivers it for the
linear kernel:

* :mod:`repro.sparse.csr` — a self-contained CSR matrix with the two
  products the implicit matvec needs (``A @ v`` and ``A.T @ v``);
* :mod:`repro.sparse.qmatrix` — :class:`SparseImplicitQMatrix`, a drop-in
  Q_tilde operator whose kernel matvec runs entirely on the CSR structure:
  per CG iteration it costs O(nnz) instead of O(m d).

Enable it through ``LSSVC(sparse=True)`` (linear kernel only).
"""

from .csr import CSRMatrix
from .qmatrix import SparseImplicitQMatrix

__all__ = ["CSRMatrix", "SparseImplicitQMatrix"]
