"""Matrix-free Q_tilde over CSR training data (linear kernel).

Identical mathematics to :class:`repro.core.qmatrix.ImplicitQMatrix`, but
the kernel matvec ``K_bar @ v = A_bar @ (A_bar.T @ v)`` runs on the CSR
structure in O(nnz) per CG iteration instead of O(m d) — the paper's
"consider sparse data structures for the CG solver" next step, restricted
to the kernel whose Gram factorization makes it possible (for polynomial /
radial kernels the kernel matrix itself is dense regardless of data
sparsity, which is exactly why PLSSVM ships dense-only).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..core.qmatrix import QMatrixBase
from ..exceptions import DataError, InvalidParameterError
from ..parameter import Parameter
from ..types import KernelType
from .csr import CSRMatrix

__all__ = ["SparseImplicitQMatrix"]


class SparseImplicitQMatrix(QMatrixBase):
    """Q_tilde whose data lives in CSR form (linear kernel only).

    Accepts either a dense array (converted once) or a ready-made
    :class:`CSRMatrix`.
    """

    def __init__(
        self,
        X: Union[np.ndarray, CSRMatrix],
        y: np.ndarray,
        param: Parameter,
        *,
        ridge: Optional[np.ndarray] = None,
    ) -> None:
        if KernelType.from_name(param.kernel) is not KernelType.LINEAR:
            raise InvalidParameterError(
                "the sparse CG path supports only the linear kernel "
                "(non-linear kernel matrices are dense regardless of data sparsity)"
            )
        if isinstance(X, CSRMatrix):
            csr = X
            dense = X.to_dense()
        else:
            dense = np.asarray(X, dtype=param.dtype)
            if dense.ndim != 2:
                raise DataError("training data must be 2-D")
            csr = CSRMatrix.from_dense(dense)
        # The base class keeps the dense copy for q_bar / prediction model
        # assembly; the per-iteration matvec only ever touches the CSR data.
        super().__init__(dense, y, param, ridge=ridge)
        self.csr = csr
        self.csr_bar = csr.head(csr.shape[0] - 1)

    @property
    def nnz(self) -> int:
        return self.csr.nnz

    @property
    def density(self) -> float:
        return self.csr.density

    def _kernel_matvec(self, v: np.ndarray) -> np.ndarray:
        return self.csr_bar.matvec(self.csr_bar.rmatvec(v))
