"""Synthetic SAT-6-like airborne imagery (substitute for paper §IV-D).

The real SAT-6 data set (Basu et al., 2015) contains 324 000 training and
81 000 test images of size 28x28 with four channels (RGB + infrared),
labeled with six land-cover classes. It cannot be downloaded offline, so
this generator produces imagery with the same tensor shape and a
qualitatively similar classification structure:

* each class has a characteristic mean spectrum per channel (buildings and
  roads are bright and IR-dark; vegetation classes are IR-bright — the
  classic NDVI contrast; water is dark everywhere);
* per-image illumination jitter, per-pixel sensor noise, and low-frequency
  texture make classes overlap realistically;
* the paper's binary mapping is provided: man-made structures (buildings,
  roads) -> -1, natural classes -> +1, with a class prior matching the
  paper's 193 729 : 130 271 imbalance (≈ 0.4 fraction of man-made).

Features are flattened to 3136 columns (28*28*4) per image; running them
through ``svm-scale``-style [-1, 1] scaling reproduces the paper's
preprocessing.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..exceptions import DataError

__all__ = ["SAT6_CLASSES", "make_sat6_like", "sat6_binary_labels"]

#: The six SAT-6 land-cover classes with their man-made flag and a mean
#: reflectance per channel (R, G, B, IR) in [0, 1].
SAT6_CLASSES = {
    "building": {"man_made": True, "spectrum": (0.62, 0.58, 0.55, 0.32)},
    "road": {"man_made": True, "spectrum": (0.48, 0.47, 0.46, 0.28)},
    "barren_land": {"man_made": False, "spectrum": (0.55, 0.47, 0.38, 0.45)},
    "trees": {"man_made": False, "spectrum": (0.22, 0.34, 0.20, 0.68)},
    "grassland": {"man_made": False, "spectrum": (0.33, 0.46, 0.27, 0.60)},
    "water": {"man_made": False, "spectrum": (0.14, 0.18, 0.22, 0.08)},
}

IMAGE_SHAPE = (28, 28, 4)
NUM_FEATURES = 28 * 28 * 4  # 3136, as in the paper


def _as_rng(rng: Union[None, int, np.random.Generator]) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def _texture(gen: np.random.Generator, n: int) -> np.ndarray:
    """Low-frequency spatial texture: smoothed noise per image and channel.

    A coarse 7x7 noise grid is bilinearly upsampled to 28x28, giving the
    blotchy appearance of aerial imagery without any image dependencies.
    """
    coarse = gen.standard_normal((n, 7, 7, 4))
    # Bilinear upsample 7 -> 28 via linear interpolation along both axes.
    xs = np.linspace(0, 6, 28)
    i0 = np.floor(xs).astype(int)
    i1 = np.minimum(i0 + 1, 6)
    w = (xs - i0)[None, :, None, None]
    rows = coarse[:, i0] * (1 - w) + coarse[:, i1] * w  # (n, 28, 7, 4)
    w2 = (xs - i0)[None, None, :, None]
    return rows[:, :, i0] * (1 - w2) + rows[:, :, i1] * w2  # (n, 28, 28, 4)


def make_sat6_like(
    num_images: int,
    *,
    man_made_fraction: float = 0.4,
    noise: float = 0.08,
    texture: float = 0.10,
    spectral_jitter: float = 0.07,
    label_noise: float = 0.01,
    rng: Union[None, int, np.random.Generator] = None,
    dtype=np.float64,
    return_class_names: bool = False,
):
    """Generate SAT-6-like images, flattened to 3136-feature rows.

    Parameters
    ----------
    num_images:
        Number of images to generate.
    man_made_fraction:
        Prior probability of a man-made class (paper: 193 729 / 324 000 ≈ 0.6
        of the images are man-made *negatives*... the paper maps man-made to
        label -1 with 193 729 instances — a fraction of ≈ 0.6; the default
        0.4 keeps the man-made classes the minority as in the *test* split;
        pass 0.6 to match the training split exactly).
    noise:
        Per-pixel sensor noise standard deviation.
    texture:
        Amplitude of the low-frequency spatial texture.
    spectral_jitter:
        Per-image, per-channel shift of the class spectrum. This is what
        makes classes genuinely overlap (pixel noise alone averages out
        over 3136 features): a jittered road tile can look like barren
        land, as in real aerial imagery.
    label_noise:
        Fraction of images whose binary label is flipped (annotation
        ambiguity — mixed tiles at class boundaries).
    rng:
        Seed or generator.
    return_class_names:
        Also return the per-image 6-class names (for multi-class
        extensions).

    Returns
    -------
    (X, y) or (X, y, classes):
        ``X`` of shape ``(num_images, 3136)`` with values roughly in
        [0, 1], ``y`` in {-1 (man-made), +1 (natural)}.
    """
    if num_images < 2:
        raise DataError("need at least two images")
    if not 0.0 < man_made_fraction < 1.0:
        raise DataError("man_made_fraction must lie in (0, 1)")
    if noise < 0 or texture < 0 or spectral_jitter < 0:
        raise DataError("noise amplitudes must be non-negative")
    if not 0.0 <= label_noise < 0.5:
        raise DataError("label_noise must lie in [0, 0.5)")

    gen = _as_rng(rng)
    names = list(SAT6_CLASSES)
    man_made = [n for n in names if SAT6_CLASSES[n]["man_made"]]
    natural = [n for n in names if not SAT6_CLASSES[n]["man_made"]]

    is_man_made = gen.random(num_images) < man_made_fraction
    classes = np.where(
        is_man_made,
        gen.choice(man_made, size=num_images),
        gen.choice(natural, size=num_images),
    )

    spectra = np.asarray(
        [SAT6_CLASSES[c]["spectrum"] for c in classes], dtype=np.float64
    )  # (n, 4)
    if spectral_jitter > 0:
        spectra = spectra + spectral_jitter * gen.standard_normal(spectra.shape)
    images = np.broadcast_to(
        spectra[:, None, None, :], (num_images, *IMAGE_SHAPE)
    ).copy()

    # Global illumination jitter per image (sun angle / exposure).
    illumination = 1.0 + 0.15 * gen.standard_normal((num_images, 1, 1, 1))
    images *= illumination
    if texture > 0:
        images += texture * _texture(gen, num_images)
    if noise > 0:
        images += noise * gen.standard_normal(images.shape)
    np.clip(images, 0.0, 1.0, out=images)

    X = images.reshape(num_images, NUM_FEATURES).astype(dtype, copy=False)
    y = np.where(is_man_made, -1.0, 1.0).astype(dtype)
    n_flip = int(round(num_images * label_noise))
    if n_flip > 0:
        flip_idx = gen.choice(num_images, size=n_flip, replace=False)
        y[flip_idx] = -y[flip_idx]
    # Guarantee both classes exist for tiny samples.
    if np.all(y == y[0]):
        y[0] = -y[0]
    if return_class_names:
        return X, y, classes
    return X, y


def sat6_binary_labels(class_names) -> np.ndarray:
    """Map 6-class names onto the paper's binary labels (man-made -> -1)."""
    out = np.empty(len(class_names), dtype=np.float64)
    for i, name in enumerate(class_names):
        try:
            out[i] = -1.0 if SAT6_CLASSES[name]["man_made"] else 1.0
        except KeyError:
            raise DataError(f"unknown SAT-6 class {name!r}") from None
    return out
