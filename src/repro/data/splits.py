"""Deterministic train/test splitting (the SAT-6 experiment's 324k/81k split)."""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from ..exceptions import DataError

__all__ = ["train_test_split"]


def train_test_split(
    X: np.ndarray,
    y: np.ndarray,
    *,
    test_fraction: float = 0.2,
    rng: Union[None, int, np.random.Generator] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle and split ``(X, y)`` into train and test partitions.

    Returns ``(X_train, X_test, y_train, y_test)``. Both partitions are
    guaranteed non-empty; the split is stratification-free (matching the
    original SAT-6 distribution, which is simply a fixed random split).
    """
    X = np.asarray(X)
    y = np.asarray(y).ravel()
    if X.shape[0] != y.shape[0]:
        raise DataError("data and labels disagree in length")
    if X.shape[0] < 2:
        raise DataError("need at least two samples to split")
    if not 0.0 < test_fraction < 1.0:
        raise DataError(f"test_fraction must lie in (0, 1), got {test_fraction}")
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    order = gen.permutation(X.shape[0])
    n_test = int(round(X.shape[0] * test_fraction))
    n_test = min(max(n_test, 1), X.shape[0] - 1)
    test_idx, train_idx = order[:n_test], order[n_test:]
    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]
