"""Synthetic data sets of the paper's evaluation.

* :mod:`repro.data.synthetic` — the "planes" generator replacing the
  paper's ``generate_data.py`` / scikit-learn ``make_classification``
  workflow (§IV-B): two adjacent Gaussian clusters with slight overlap and
  1 % label noise.
* :mod:`repro.data.sat6` — a synthetic stand-in for the SAT-6 airborne
  land-cover data set (§IV-D): 28x28x4 RGB-IR images of six classes with
  class-specific spectral signatures, mapped onto the paper's binary
  man-made vs natural split.
* :mod:`repro.data.splits` — deterministic train/test splitting.
"""

from .sat6 import SAT6_CLASSES, make_sat6_like, sat6_binary_labels
from .splits import train_test_split
from .synthetic import make_multiclass, make_planes

__all__ = [
    "make_planes",
    "make_multiclass",
    "make_sat6_like",
    "sat6_binary_labels",
    "SAT6_CLASSES",
    "train_test_split",
]
