"""The "planes" synthetic classification generator (paper §IV-B).

The paper creates its scaling data sets with scikit-learn's
``make_classification`` through PLSSVM's ``generate_data.py`` utility
(problem type "planes"): *"The two generated clusters are adjacent to each
other and overlap with a low probability in a few points. Additionally, one
percent of the labels were set randomly to ensure some noise."*

scikit-learn is not available offline, so this module implements the
generator directly: a random separating hyperplane is drawn, and the two
classes are sampled as Gaussian clusters whose centers sit at ``+/-
class_sep`` along its normal — adjacent, slightly overlapping when
``cluster_std`` is comparable to ``class_sep``. Finally ``flip_fraction``
of the labels are re-rolled uniformly, reproducing the 1 % label noise.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from ..exceptions import DataError

__all__ = ["make_planes", "make_multiclass"]


def _as_rng(rng: Union[None, int, np.random.Generator]) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def make_planes(
    num_points: int,
    num_features: int,
    *,
    class_sep: float = 1.3,
    cluster_std: float = 0.7,
    flip_fraction: float = 0.01,
    balance: float = 0.5,
    rng: Union[None, int, np.random.Generator] = None,
    dtype=np.float64,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate the paper's "planes" binary classification problem.

    Parameters
    ----------
    num_points, num_features:
        Data set extent; the paper sweeps powers of two but any size works.
    class_sep:
        Distance of each cluster center from the separating hyperplane
        along its normal. Together with ``cluster_std`` it controls how
        often the clusters overlap ("adjacent ... overlap with a low
        probability in a few points"). The defaults put a linear SVM's
        training accuracy at ~97 %, the separability regime the paper's
        epsilon-matching protocol targets.
    cluster_std:
        Isotropic standard deviation of each cluster.
    flip_fraction:
        Fraction of labels re-assigned uniformly at random (paper: 1 %).
    balance:
        Fraction of points in the +1 class.
    rng:
        Seed or :class:`numpy.random.Generator` for reproducibility. The
        paper generates a *new* data set per run; passing ``None`` does the
        same here.

    Returns
    -------
    (X, y):
        ``X`` of shape ``(num_points, num_features)``, ``y`` in {-1, +1}.
        Both classes are guaranteed non-empty (required for training).
    """
    if num_points < 2:
        raise DataError("need at least two data points")
    if num_features < 1:
        raise DataError("need at least one feature")
    if not 0.0 <= flip_fraction < 0.5:
        raise DataError(f"flip_fraction must lie in [0, 0.5), got {flip_fraction}")
    if not 0.0 < balance < 1.0:
        raise DataError(f"balance must lie in (0, 1), got {balance}")
    if class_sep <= 0 or cluster_std <= 0:
        raise DataError("class_sep and cluster_std must be positive")

    gen = _as_rng(rng)
    normal = gen.standard_normal(num_features)
    normal /= np.linalg.norm(normal)

    n_pos = int(round(num_points * balance))
    n_pos = min(max(n_pos, 1), num_points - 1)
    y = np.concatenate(
        [np.ones(n_pos), -np.ones(num_points - n_pos)]
    )

    X = gen.standard_normal((num_points, num_features)) * cluster_std
    X += (y * class_sep)[:, None] * normal[None, :]

    # 1 % label noise: labels are *set randomly*, i.e. re-rolled (a re-roll
    # keeps the old label half the time, so the effective flip rate is
    # flip_fraction / 2 — matching make_classification's flip_y semantics).
    n_flip = int(round(num_points * flip_fraction))
    if n_flip > 0:
        idx = gen.choice(num_points, size=n_flip, replace=False)
        y[idx] = gen.choice([-1.0, 1.0], size=n_flip)

    # Shuffle so class blocks do not align with storage order.
    order = gen.permutation(num_points)
    X, y = X[order], y[order]

    # Training requires both classes; nudge one point if noise erased a class.
    if np.all(y == y[0]):
        y[0] = -y[0]
    return X.astype(dtype, copy=False), y.astype(dtype, copy=False)


def make_multiclass(
    num_points: int,
    num_features: int,
    *,
    num_classes: int = 3,
    cluster_std: float = 0.7,
    center_scale: float = 3.0,
    flip_fraction: float = 0.01,
    rng: Union[None, int, np.random.Generator] = None,
    dtype=np.float64,
) -> Tuple[np.ndarray, np.ndarray]:
    """Gaussian-blob multi-class data for the multi-class LS-SVM extension.

    ``num_classes`` isotropic Gaussian clusters around random centers of
    magnitude ``center_scale``; labels are ``0 .. num_classes-1`` with
    ``flip_fraction`` of them re-rolled uniformly. Every class is
    guaranteed at least two points (so pairwise one-vs-one machines can
    train).
    """
    if num_points < 2 * num_classes:
        raise DataError(
            f"need at least {2 * num_classes} points for {num_classes} classes"
        )
    if num_features < 1:
        raise DataError("need at least one feature")
    if num_classes < 2:
        raise DataError("need at least two classes")
    if not 0.0 <= flip_fraction < 0.5:
        raise DataError(f"flip_fraction must lie in [0, 0.5), got {flip_fraction}")
    if cluster_std <= 0 or center_scale <= 0:
        raise DataError("cluster_std and center_scale must be positive")

    gen = _as_rng(rng)
    centers = gen.standard_normal((num_classes, num_features)) * center_scale
    # Round-robin class assignment guarantees balanced minimum counts.
    y = np.arange(num_points) % num_classes
    gen.shuffle(y)
    X = centers[y] + gen.standard_normal((num_points, num_features)) * cluster_std

    n_flip = int(round(num_points * flip_fraction))
    if n_flip > 0:
        idx = gen.choice(num_points, size=n_flip, replace=False)
        y = y.copy()
        y[idx] = gen.integers(0, num_classes, size=n_flip)
    # Re-guarantee two points per class after the flips.
    for label in range(num_classes):
        short = 2 - int(np.sum(y == label))
        if short > 0:
            donors = np.nonzero(np.bincount(y, minlength=num_classes)[y] > 2)[0]
            y[donors[:short]] = label
    return X.astype(dtype, copy=False), y.astype(np.float64)
