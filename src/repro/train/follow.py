"""The trainer daemon behind ``plssvm-train --follow``.

A :class:`FollowTrainer` ties the streaming pieces together into a
train-side loop that keeps a served model current while its dataset
grows:

1. **Watch** — either one PLSB file that producers extend with
   :func:`~repro.io.binary_format.append_binary_rows` (detected via
   :meth:`~repro.io.chunked.ChunkedDataset.refresh`, which re-opens the
   atomically-replaced file), or a directory into which producers drop
   whole ``*.plsb`` chunk files (processed once each, in name order).
2. **Refit** — feed only the new rows to the estimator's
   ``partial_fit``: the incremental engine extends the kernel matrix by
   the new cross/corner blocks and warm-starts CG from the previous
   solution, so a small append costs a small solve.
3. **Publish** — write a generation-stamped model artifact atomically
   (temp file + ``os.replace`` so a concurrent reader never sees a torn
   model), then push the new generation into serving: an in-process
   :class:`~repro.serve.registry.ModelRegistry` re-registration, and/or
   a ``POST /models/<name>/reload`` against a running ``plssvm-serve``.

The generation counter increments once per successful refit; the sidecar
``<model>.meta.json`` records it next to the row count so external
rollout tooling can assert freshness without parsing the model itself.
"""

from __future__ import annotations

import json
import os
import time
import urllib.request
from pathlib import Path
from typing import Callable, Optional, Union

import numpy as np

from ..exceptions import InvalidParameterError
from ..io.binary_format import is_binary_file, read_binary_file
from ..io.chunked import ChunkedDataset

__all__ = ["FollowTrainer"]


class FollowTrainer:
    """Watch a growing dataset, refit incrementally, roll out each generation.

    Parameters
    ----------
    estimator:
        Any estimator exposing ``partial_fit(X, y)`` (``LSSVC``, ``LSSVR``,
        ``OneVsAllLSSVC``). The trainer never calls ``fit`` — the first
        chunk trains from scratch through the same incremental path.
    source:
        A PLSB file that grows in place (appends detected via
        ``ChunkedDataset.refresh``) or a directory receiving ``*.plsb``
        chunk files (each consumed exactly once, sorted by name).
    model_path:
        Where to publish the model artifact. Written atomically on every
        refit; a ``<model_path>.meta.json`` sidecar carries
        ``{"generation", "rows", "chunks"}``.
    model_name:
        Registry/serving name used for rollout (default ``"model"``).
    registry:
        Optional in-process :class:`ModelRegistry`; the fitted in-memory
        model is (re-)registered under ``model_name`` on every refit,
        bumping the serving generation.
    serve_url:
        Optional base URL of a running ``plssvm-serve`` (e.g.
        ``http://127.0.0.1:8000``); each refit POSTs
        ``/models/<model_name>/reload`` after the artifact is written.
    poll_interval:
        Seconds between polls in :meth:`run`.
    max_generations:
        Stop :meth:`run` after this many successful refits (``None``:
        run until interrupted).
    on_event:
        Optional callable receiving human-readable progress lines.
    """

    def __init__(
        self,
        estimator,
        source: Union[str, Path],
        *,
        model_path: Optional[Union[str, Path]] = None,
        model_name: str = "model",
        registry=None,
        serve_url: Optional[str] = None,
        poll_interval: float = 1.0,
        max_generations: Optional[int] = None,
        on_event: Optional[Callable[[str], None]] = None,
    ) -> None:
        if not hasattr(estimator, "partial_fit"):
            raise InvalidParameterError(
                f"{type(estimator).__name__} has no partial_fit; the follow "
                "trainer needs an incremental estimator"
            )
        if poll_interval <= 0:
            raise InvalidParameterError("poll_interval must be positive")
        if model_path is not None and not hasattr(estimator, "save"):
            raise InvalidParameterError(
                f"{type(estimator).__name__} has no save(); drop model_path "
                "or use an estimator that writes model artifacts"
            )
        self.estimator = estimator
        self.source = Path(source)
        if not self.source.exists():
            raise InvalidParameterError(f"{self.source}: no such file or directory")
        self.directory_mode = self.source.is_dir()
        self.model_path = Path(model_path) if model_path is not None else None
        self.model_name = model_name
        self.registry = registry
        self.serve_url = serve_url.rstrip("/") if serve_url else None
        self.poll_interval = float(poll_interval)
        self.max_generations = max_generations
        self.on_event = on_event
        self.generation = -1  # first publish is generation 0
        self.rows_consumed = 0
        self.chunks_consumed = 0
        self._dataset: Optional[ChunkedDataset] = None
        self._seen_files: set = set()
        if not self.directory_mode:
            self._dataset = ChunkedDataset(self.source)

    # -- the poll loop --------------------------------------------------------

    def poll_once(self) -> int:
        """Check the source once; refit + publish when rows arrived.

        Returns the number of new rows consumed (0 when nothing changed).
        """
        if self.directory_mode:
            rows = self._consume_directory()
        else:
            rows = self._consume_file()
        return rows

    def run(self, *, max_polls: Optional[int] = None) -> int:
        """Poll until ``max_generations`` refits (or ``max_polls`` polls).

        Returns the total number of rows consumed. ``KeyboardInterrupt``
        exits cleanly.
        """
        polls = 0
        generations = 0
        try:
            while True:
                if self.poll_once() > 0:
                    generations += 1
                    if (
                        self.max_generations is not None
                        and generations >= self.max_generations
                    ):
                        break
                polls += 1
                if max_polls is not None and polls >= max_polls:
                    break
                time.sleep(self.poll_interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            self._log("interrupted; stopping")
        return self.rows_consumed

    def close(self) -> None:
        if self._dataset is not None:
            self._dataset.close()

    def __enter__(self) -> "FollowTrainer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- sources --------------------------------------------------------------

    def _consume_file(self) -> int:
        ds = self._dataset
        start = self.rows_consumed
        if start == 0 and ds.num_rows > 0:
            pass  # initial contents count as the first chunk
        elif ds.refresh() == 0:
            return 0
        stop = ds.num_rows
        if stop <= start:
            return 0
        X = np.array(ds.row_block(start, stop))
        y = np.array(ds.y[start:stop])
        self._refit(X, y)
        return stop - start

    def _consume_directory(self) -> int:
        pending = sorted(
            p
            for p in self.source.iterdir()
            if p.suffix == ".plsb"
            and p.name not in self._seen_files
            and is_binary_file(p)
        )
        rows = 0
        for path in pending:
            X, y = read_binary_file(path, mmap=False)
            self._refit(X, y)
            self._seen_files.add(path.name)
            rows += X.shape[0]
        return rows

    # -- refit + rollout ------------------------------------------------------

    def _refit(self, X: np.ndarray, y: np.ndarray) -> None:
        t0 = time.perf_counter()
        self.estimator.partial_fit(X, y)
        self.rows_consumed += int(X.shape[0])
        self.chunks_consumed += 1
        self.generation += 1
        elapsed = time.perf_counter() - t0
        report = getattr(self.estimator, "report_", None)
        warm = report.solver.get("warm_start_iterations") if report is not None else None
        self._log(
            f"generation {self.generation}: +{X.shape[0]} rows "
            f"({self.rows_consumed} total) refit in {elapsed:.3f}s"
            + (f", {warm} warm-started CG iterations" if warm else "")
        )
        self._publish()

    def _publish(self) -> None:
        if self.model_path is not None:
            self._write_artifact()
        if self.registry is not None:
            model = getattr(self.estimator, "model_", None)
            if model is None:
                raise InvalidParameterError(
                    f"{type(self.estimator).__name__} exposes no model_ to "
                    "register; use a direct (non-ensemble) estimator with "
                    "an in-process registry"
                )
            generation = self.registry.register(self.model_name, model)
            self._log(
                f"registry: {self.model_name!r} -> generation {generation}"
            )
        if self.serve_url is not None:
            self._push_reload()

    def _write_artifact(self) -> None:
        """Atomic publish: save to a sibling temp path, then ``os.replace``."""
        tmp = self.model_path.with_name(self.model_path.name + ".tmp")
        try:
            self.estimator.save(tmp)
            os.replace(tmp, self.model_path)
        finally:
            if tmp.exists():
                tmp.unlink()
        meta = {
            "generation": self.generation,
            "rows": self.rows_consumed,
            "chunks": self.chunks_consumed,
        }
        meta_path = self.model_path.with_name(self.model_path.name + ".meta.json")
        meta_tmp = meta_path.with_name(meta_path.name + ".tmp")
        meta_tmp.write_text(json.dumps(meta, indent=2) + "\n")
        os.replace(meta_tmp, meta_path)
        self._log(f"model artifact -> {self.model_path}")

    def _push_reload(self) -> None:
        url = f"{self.serve_url}/models/{self.model_name}/reload"
        req = urllib.request.Request(
            url, data=b"{}", headers={"Content-Type": "application/json"}
        )
        try:
            with urllib.request.urlopen(req, timeout=30.0) as resp:
                payload = json.loads(resp.read())
        except OSError as exc:
            self._log(f"serve reload failed ({url}): {exc}")
            return
        self._log(
            f"serve: {self.model_name!r} -> generation {payload.get('generation')}"
        )

    def _log(self, message: str) -> None:
        if self.on_event is not None:
            self.on_event(message)
