"""Online training: follow a growing dataset and refit incrementally."""

from .follow import FollowTrainer

__all__ = ["FollowTrainer"]
