"""Multi-model registry: named models, warm-engine LRU, hot-swap reload.

A serving process fronts many models but cannot keep them all warm: each
warm :class:`~repro.serve.engine.PredictionEngine` pins the support-vector
matrix (possibly twice, with a ``compute_dtype`` cast) plus norms in
memory. The registry therefore separates the cheap part — *knowing* a
model (a name bound to a file path or an in-memory model object) — from
the expensive part — keeping its engine warm — and budgets only the
latter: a byte-budgeted LRU over warm engines, the same idiom as the
training side's :class:`~repro.core.tile_pipeline.TileCache` (evict
least-recently-used until the newcomer fits; an engine alone larger than
the whole budget is served cold-built but never retained).

Hot swap is generation-tagged: every (re)registration bumps the name's
generation, and :meth:`get` hands out a warm engine only when its
generation matches the current registration — a reloaded model can never
be served from the stale engine, while requests already in flight on the
old engine object finish undisturbed (engines are immutable).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..core.model import MODEL_TYPES, LSSVMModel, load_model
from ..exceptions import InvalidParameterError, ModelNotFoundError
from .engine import PredictionEngine

__all__ = ["ModelRegistry", "DEFAULT_REGISTRY_MB"]

#: Default byte budget for warm engines (MiB) — roughly forty 4096x64
#: float64 models; tune with ``ModelRegistry(budget_mb=...)``.
DEFAULT_REGISTRY_MB = 512.0


class _Registration:
    """One name's current source and generation."""

    __slots__ = ("source", "generation")

    def __init__(self, source: Union[str, Path, LSSVMModel, "FeatureMapModel"], generation: int) -> None:
        self.source = source
        self.generation = generation


class _InFlight:
    """Singleflight ticket for one cold load in progress.

    The loader builds the engine *outside* the registry lock and then
    publishes it here; concurrent misses for the same (name, generation)
    wait on ``event`` instead of duplicating the load — and, crucially,
    instead of serializing every *other* model's warm hits behind the
    disk read.
    """

    __slots__ = ("generation", "event", "engine", "error")

    def __init__(self, generation: int) -> None:
        self.generation = generation
        self.event = threading.Event()
        self.engine: Optional[PredictionEngine] = None
        self.error: Optional[BaseException] = None


class ModelRegistry:
    """Named models with a byte-budgeted LRU of warm engines.

    Parameters
    ----------
    budget_mb:
        Byte budget (MiB) for *warm engines* (not registrations, which
        are a name and a path). ``0`` keeps nothing warm — every ``get``
        builds a throwaway engine, which still works but forfeits the
        amortization.
    solver_threads / compute_dtype / tile_rows:
        Forwarded to every engine built by this registry.
    """

    def __init__(
        self,
        *,
        budget_mb: float = DEFAULT_REGISTRY_MB,
        solver_threads: Optional[int] = None,
        compute_dtype=None,
        tile_rows: int = 1024,
    ) -> None:
        if budget_mb < 0:
            raise InvalidParameterError("budget_mb must be non-negative")
        self.budget_bytes = int(budget_mb * 1024 * 1024)
        self._engine_kwargs = {
            "solver_threads": solver_threads,
            "compute_dtype": compute_dtype,
            "tile_rows": tile_rows,
        }
        self._registrations: Dict[str, _Registration] = {}
        self._warm: "OrderedDict[str, PredictionEngine]" = OrderedDict()
        self._warm_bytes = 0
        self._loading: Dict[str, _InFlight] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.oversized = 0
        self.reloads = 0

    # -- registration ---------------------------------------------------------

    def register(self, name: str, source: Union[str, Path, LSSVMModel, "FeatureMapModel"]) -> int:
        """Bind ``name`` to a model file path or an in-memory model.

        Re-registering an existing name is the hot-swap path: the
        generation is bumped and any warm engine of the old generation is
        dropped, so the next request is served by the new model. Returns
        the new generation.

        In-memory models that support invalidation hooks (see
        :meth:`LSSVMModel.add_invalidation_hook`) are wired up so that an
        in-place mutation — a ``partial_fit`` refit rewriting
        ``alpha``/``support_vectors`` — bumps the generation and drops the
        warm engine automatically: serving never answers from the stale
        solution even without an explicit :meth:`reload`.
        """
        if not name:
            raise InvalidParameterError("model name must be non-empty")
        if not isinstance(source, (str, Path) + MODEL_TYPES):
            raise InvalidParameterError(
                "model source must be a path, an LSSVMModel, or a "
                f"FeatureMapModel, got {type(source).__name__}"
            )
        with self._lock:
            current = self._registrations.get(name)
            generation = current.generation + 1 if current is not None else 0
            self._registrations[name] = _Registration(source, generation)
            if current is not None:
                self.reloads += 1
            stale = self._warm.pop(name, None)
            if stale is not None:
                self._warm_bytes -= stale.nbytes
            self._rewire_hook(name, current.source if current is not None else None, source)
            return generation

    def reload(self, name: str, source: Union[str, Path, LSSVMModel, "FeatureMapModel", None] = None) -> int:
        """Hot-swap ``name``: bump the generation and drop the warm engine.

        With ``source`` this is a plain re-registration; without it the
        name is rebuilt from its *current* source — the path is re-read
        (picking up a rewritten model file) or the in-memory model is
        re-admitted (picking up an in-place ``partial_fit`` mutation).
        Returns the new generation.
        """
        if source is None:
            with self._lock:
                current = self._registrations.get(name)
                if current is None:
                    raise ModelNotFoundError(name)
                source = current.source
        return self.register(name, source)

    def unregister(self, name: str) -> None:
        with self._lock:
            if name not in self._registrations:
                raise ModelNotFoundError(name)
            registration = self._registrations.pop(name)
            stale = self._warm.pop(name, None)
            if stale is not None:
                self._warm_bytes -= stale.nbytes
            self._rewire_hook(name, registration.source, None)

    # -- in-memory model invalidation -----------------------------------------

    def _hook_key(self, name: str):
        return ("registry", id(self), name)

    def _rewire_hook(self, name: str, old_source, new_source) -> None:
        """Move the invalidation hook from ``old_source`` to ``new_source``
        (either may be ``None``/a path/a hook-less model; lock held)."""
        key = self._hook_key(name)
        if (
            old_source is not None
            and old_source is not new_source
            and hasattr(old_source, "remove_invalidation_hook")
        ):
            old_source.remove_invalidation_hook(key)
        if new_source is not None and hasattr(new_source, "add_invalidation_hook"):
            new_source.add_invalidation_hook(
                key, lambda model, name=name: self._on_model_invalidated(name, model)
            )

    def _on_model_invalidated(self, name: str, model) -> None:
        """An in-memory model mutated in place: bump its generation so no
        warm engine of the old solution is ever handed out again."""
        with self._lock:
            registration = self._registrations.get(name)
            if registration is None or registration.source is not model:
                return
            registration.generation += 1
            self.reloads += 1
            stale = self._warm.pop(name, None)
            if stale is not None:
                self._warm_bytes -= stale.nbytes

    # -- lookup ---------------------------------------------------------------

    def get(self, name: str) -> PredictionEngine:
        """The warm engine for ``name``, building (and caching) on miss.

        The returned engine always carries the *current* generation: a
        warm engine left over from before a :meth:`reload` can never be
        handed out.

        Cold loads run *outside* the registry lock with per-name
        singleflight: one cold ``get`` never stalls warm hits for other
        models, and concurrent misses for the same (name, generation)
        still load the model exactly once — the extra callers wait on the
        loader's ticket and share its engine.
        """
        while True:
            with self._lock:
                registration = self._registrations.get(name)
                if registration is None:
                    raise ModelNotFoundError(name)
                warm = self._warm.get(name)
                if warm is not None and warm.generation == registration.generation:
                    self.hits += 1
                    self._warm.move_to_end(name)
                    return warm
                inflight = self._loading.get(name)
                if inflight is not None and inflight.generation == registration.generation:
                    ticket, loader = inflight, False
                else:
                    self.misses += 1
                    ticket = _InFlight(registration.generation)
                    self._loading[name] = ticket
                    source = registration.source
                    loader = True
            if not loader:
                ticket.event.wait()
                if ticket.error is not None:
                    raise ticket.error
                with self._lock:
                    registration = self._registrations.get(name)
                    if (
                        registration is not None
                        and ticket.engine is not None
                        and ticket.engine.generation == registration.generation
                    ):
                        self.hits += 1
                        return ticket.engine
                continue  # reloaded (or gone) while loading: start over
            try:
                model = (
                    source if isinstance(source, MODEL_TYPES) else load_model(source)
                )
                engine = PredictionEngine(
                    model,
                    name=name,
                    generation=ticket.generation,
                    **self._engine_kwargs,
                )
            except BaseException as exc:
                ticket.error = exc
                with self._lock:
                    if self._loading.get(name) is ticket:
                        del self._loading[name]
                ticket.event.set()
                raise
            with self._lock:
                if self._loading.get(name) is ticket:
                    del self._loading[name]
                registration = self._registrations.get(name)
                if registration is None:
                    stale = True
                else:
                    stale = registration.generation != ticket.generation
                    if not stale:
                        self._admit(name, engine)
            ticket.engine = engine
            ticket.event.set()
            if stale:
                # A reload (or unregister) raced the build; never hand out
                # a stale generation — re-resolve from the top.
                continue
            return engine

    def _admit(self, name: str, engine: PredictionEngine) -> None:
        """LRU admission under the byte budget (lock held)."""
        nbytes = engine.nbytes
        if nbytes > self.budget_bytes:
            # Retaining it would pin the set over budget forever; serve
            # this engine cold-built, keep the LRU intact.
            self.oversized += 1
            return
        stale = self._warm.pop(name, None)
        if stale is not None:
            self._warm_bytes -= stale.nbytes
        self._warm[name] = engine
        self._warm_bytes += nbytes
        while self._warm_bytes > self.budget_bytes:
            _, evicted = self._warm.popitem(last=False)
            self._warm_bytes -= evicted.nbytes
            self.evictions += 1

    # -- introspection --------------------------------------------------------

    @property
    def warm_bytes(self) -> int:
        with self._lock:
            return self._warm_bytes

    @property
    def warm_models(self) -> List[str]:
        with self._lock:
            return list(self._warm)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._registrations

    def __len__(self) -> int:
        with self._lock:
            return len(self._registrations)

    def models(self) -> List[dict]:
        """JSON-ready per-model summaries for the ``/models`` endpoint."""
        with self._lock:
            out = []
            for name, registration in sorted(self._registrations.items()):
                warm = self._warm.get(name)
                entry = {
                    "name": name,
                    "generation": registration.generation,
                    "warm": warm is not None
                    and warm.generation == registration.generation,
                    "source": (
                        str(registration.source)
                        if not isinstance(registration.source, MODEL_TYPES)
                        else "<in-memory>"
                    ),
                }
                if warm is not None:
                    entry.update(warm.describe())
                out.append(entry)
            return out

    def stats(self) -> dict:
        with self._lock:
            return {
                "registered": len(self._registrations),
                "warm": len(self._warm),
                "warm_bytes": self._warm_bytes,
                "budget_bytes": self.budget_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "oversized": self.oversized,
                "reloads": self.reloads,
            }
