"""The structured serving report and the ``/metrics`` schema.

The serving analogue of :class:`repro.telemetry.TrainingReport`: where a
training report attributes one fit's counters and spans, a
:class:`ServingReport` snapshots one *server's* lifetime — request /
batch / rejection counters, latency histograms (request wall time, batch
wait, sweep seconds), queue gauges, registry occupancy, and per-model
summaries. ``/metrics`` serves exactly :meth:`ServingReport.as_dict`,
and :func:`validate_serving_report` checks the shape the same hand-rolled
way ``validate_report`` does (no third-party jsonschema), so the CI
serving-smoke job can hard-fail on drift.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..exceptions import TelemetryError

__all__ = [
    "ServingReport",
    "SERVING_REPORT_SCHEMA",
    "SERVING_REPORT_SCHEMA_VERSION",
    "validate_serving_report",
    "build_serving_report",
]

#: Version stamp written into every serving report.
#: v2 added the serve_timeouts / serve_batch_errors counters.
#: v3 added flush-trigger counters (count vs max-wait vs drain),
#: batch-size quantiles, and per-model latency_ms p50/p95/p99.
SERVING_REPORT_SCHEMA_VERSION = 3

#: Required top-level keys -> type spec (same conventions as REPORT_SCHEMA).
SERVING_REPORT_SCHEMA: Dict[str, object] = {
    "schema_version": int,
    "server": str,
    "uptime_seconds": (int, float),
    "policy": dict,
    "counters": dict,
    "latency": dict,
    "queue": dict,
    "registry": dict,
    "models": list,
}

#: Counter keys every serving report must carry.
_REQUIRED_COUNTERS = (
    "serve_requests",
    "serve_rows",
    "serve_rows_submitted",
    "serve_batches",
    "serve_batched_requests",
    "serve_rejected",
    "serve_timeouts",
    "serve_batch_errors",
    "serve_flush_count_trigger",
    "serve_flush_max_wait",
    "serve_flush_drain",
    "tile_sweeps",
)

#: Histogram keys every serving report must carry under "latency".
_REQUIRED_LATENCY = (
    "serve_request_seconds",
    "serve_wait_seconds",
    "serve_batch_rows",
    "sweep_seconds",
)

_HISTOGRAM_FIELDS = ("count", "total", "mean", "min", "max")


def _check(cond: bool, message: str) -> None:
    if not cond:
        raise TelemetryError(message)


def validate_serving_report(data: Union[dict, str]) -> dict:
    """Validate a serialized serving report / ``/metrics`` payload.

    Accepts the parsed dict or a JSON string; returns the parsed dict on
    success, raises :class:`~repro.exceptions.TelemetryError` naming the
    first violation otherwise.
    """
    if isinstance(data, str):
        try:
            data = json.loads(data)
        except json.JSONDecodeError as exc:
            raise TelemetryError(f"serving report is not valid JSON: {exc}") from exc
    _check(isinstance(data, dict), "serving report must be a JSON object")
    for key, spec in SERVING_REPORT_SCHEMA.items():
        _check(key in data, f"serving report missing required key {key!r}")
        if spec in (list, dict):
            _check(
                isinstance(data[key], spec),
                f"serving report key {key!r} must be a {spec.__name__}",
            )
        else:
            _check(
                isinstance(data[key], spec)
                and not (spec is int and isinstance(data[key], bool)),
                f"serving report key {key!r} has wrong type "
                f"{type(data[key]).__name__}",
            )
    _check(
        data["schema_version"] == SERVING_REPORT_SCHEMA_VERSION,
        f"unsupported schema_version {data['schema_version']!r} "
        f"(expected {SERVING_REPORT_SCHEMA_VERSION})",
    )
    for key in _REQUIRED_COUNTERS:
        _check(key in data["counters"], f"serving counters missing key {key!r}")
        _check(
            isinstance(data["counters"][key], (int, float)),
            f"serving counter {key!r} must be numeric",
        )
    for key in _REQUIRED_LATENCY:
        _check(key in data["latency"], f"serving latency missing key {key!r}")
        hist = data["latency"][key]
        _check(isinstance(hist, dict), f"serving latency {key!r} must be an object")
        for field in _HISTOGRAM_FIELDS:
            _check(
                field in hist and isinstance(hist[field], (int, float)),
                f"serving latency {key!r} missing numeric field {field!r}",
            )
    for key in ("depth_rows", "max_queue_rows"):
        _check(
            key in data["queue"] and isinstance(data["queue"][key], (int, float)),
            f"serving queue missing numeric key {key!r}",
        )
    for i, model in enumerate(data["models"]):
        _check(isinstance(model, dict), f"models[{i}] must be an object")
        for key in ("name", "generation", "warm"):
            _check(key in model, f"models[{i}] missing key {key!r}")
        _check(
            isinstance(model.get("latency_ms"), dict),
            f"models[{i}] missing latency_ms quantiles",
        )
        for q in ("p50", "p95", "p99"):
            _check(
                isinstance(model["latency_ms"].get(q), (int, float)),
                f"models[{i}].latency_ms missing numeric quantile {q!r}",
            )
    return data


@dataclasses.dataclass
class ServingReport:
    """Snapshot of one server's serving telemetry.

    Attributes
    ----------
    server:
        Label of the serving context (host:port for the HTTP server).
    uptime_seconds:
        Seconds since the serving context's epoch.
    policy:
        The active :class:`~repro.serve.batcher.BatchPolicy` knobs.
    counters:
        Serving counters scoped to this server (requests, rows, batches,
        coalesced requests, rejections, timed-out requests, failed
        batches, tile sweeps).
    latency:
        Histogram snapshots (count/total/mean/min/max) of request wall
        time, batch wait, batch size, and sweep seconds.
    queue / registry / models:
        Queue occupancy, warm-engine LRU stats, per-model summaries.
    """

    server: str
    uptime_seconds: float
    policy: Dict[str, object]
    counters: Dict[str, float]
    latency: Dict[str, Dict[str, float]]
    queue: Dict[str, float]
    registry: Dict[str, object]
    models: List[dict]
    schema_version: int = SERVING_REPORT_SCHEMA_VERSION

    def as_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "server": self.server,
            "uptime_seconds": self.uptime_seconds,
            "policy": dict(self.policy),
            "counters": dict(self.counters),
            "latency": {k: dict(v) for k, v in self.latency.items()},
            "queue": dict(self.queue),
            "registry": dict(self.registry),
            "models": list(self.models),
        }

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, default=_jsonify)

    def write_json(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(self.to_json())
        return path


def _jsonify(value):
    if hasattr(value, "item"):
        return value.item()
    return str(value)


def _histogram_snapshot(ctx, name: str) -> Dict[str, float]:
    return ctx.metrics.histogram(name).snapshot()


def build_serving_report(
    ctx,
    *,
    server: str,
    policy,
    registry=None,
    queue_rows: int = 0,
    models: Optional[List[dict]] = None,
) -> ServingReport:
    """Assemble a :class:`ServingReport` from a live serving context.

    Parameters
    ----------
    ctx:
        The server's aggregate :class:`~repro.telemetry.TelemetryContext`.
    server:
        Display label (e.g. ``"127.0.0.1:8000"``).
    policy:
        The active :class:`~repro.serve.batcher.BatchPolicy`.
    registry:
        The :class:`~repro.serve.registry.ModelRegistry`, when serving
        from one (its stats and model list land in the report).
    queue_rows:
        Current queued-row count across batchers.
    models:
        Explicit model summaries; defaults to ``registry.models()``.
    """
    counters = {
        "serve_requests": ctx.metrics.value("serve_requests"),
        "serve_rows": ctx.metrics.value("serve_rows"),
        "serve_rows_submitted": ctx.metrics.value("serve_rows_submitted"),
        "serve_batches": ctx.metrics.value("serve_batches"),
        "serve_batched_requests": ctx.metrics.value("serve_batched_requests"),
        "serve_rejected": ctx.metrics.value("serve_rejected"),
        "serve_timeouts": ctx.metrics.value("serve_timeouts"),
        "serve_batch_errors": ctx.metrics.value("serve_batch_errors"),
        "serve_flush_count_trigger": ctx.metrics.value("serve_flush_count_trigger"),
        "serve_flush_max_wait": ctx.metrics.value("serve_flush_max_wait"),
        "serve_flush_drain": ctx.metrics.value("serve_flush_drain"),
        "serve_errors": ctx.metrics.value("serve_errors"),
        "tile_sweeps": ctx.metrics.value("tile_sweeps"),
        "tiles_computed": ctx.metrics.value("tiles_computed"),
    }
    latency = {
        name: _histogram_snapshot(ctx, name)
        for name in (
            "serve_request_seconds",
            "serve_wait_seconds",
            "serve_batch_rows",
            "serve_batch_requests",
            "sweep_seconds",
        )
    }
    # Batch-size quantiles from the same reservoir the snapshot summarizes
    # — "what shapes are batches actually flushing at" for the harness.
    latency["serve_batch_rows"] = dict(latency["serve_batch_rows"])
    latency["serve_batch_rows"].update(
        ctx.metrics.histogram("serve_batch_rows").quantiles()
    )
    model_list = models if models is not None else (registry.models() if registry else [])
    annotated = []
    for entry in model_list:
        entry = dict(entry)
        hist = ctx.metrics.histogram(f"serve_model_seconds::{entry.get('name')}")
        entry["latency_ms"] = {
            key: value * 1000.0 for key, value in hist.quantiles().items()
        }
        entry["requests"] = hist.count
        annotated.append(entry)
    return ServingReport(
        server=server,
        uptime_seconds=ctx.now(),
        policy=policy.as_dict() if hasattr(policy, "as_dict") else dict(policy),
        counters=counters,
        latency=latency,
        queue={
            "depth_rows": int(queue_rows),
            "max_queue_rows": int(getattr(policy, "max_queue_rows", 0)),
        },
        registry=registry.stats() if registry is not None else {},
        models=annotated,
    )
