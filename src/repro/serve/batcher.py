"""Micro-batching: coalesce concurrent small requests into one tile sweep.

Kernel-SVM inference cost is one kernel-row evaluation against the
support set per test row — work that is embarrassingly batchable: the
sweep cost for a block of rows is one tiled GEMM pass whether the rows
arrived together or one request at a time. A server receiving K
concurrent single-row requests therefore wants to *stack* them and pay
⌈K / max_batch_rows⌉ sweeps instead of K.

:class:`MicroBatcher` implements that with the standard two-knob policy:

* ``max_batch_rows`` — a batch flushes as soon as this many rows are
  queued (count trigger, keeps latency low under load);
* ``max_wait_ms`` — the *oldest* queued request never waits longer than
  this before its batch flushes anyway (deadline trigger, bounds latency
  when traffic is sparse; a full batch never waits).

Admission control is a bounded queue: a request that would push the
queued row count past ``max_queue_rows`` is rejected up front with
:class:`~repro.exceptions.ServerOverloadedError` — typed backpressure the
HTTP layer maps to 503 — instead of growing the queue without limit.

Demux is deterministic: requests enter the batch in admission order,
their rows are stacked in that order, and each submitter gets back
exactly its slice of the stacked result. Because every output row of a
sweep is an independent dot product, the batched decision values are
bit-identical to evaluating the same stacked rows in one offline
``model.predict`` call.

A timed-out ``submit`` *cancels* its request: if the request is still
queued it is removed and its rows stop counting against the
``max_queue_rows`` admission budget immediately; if the flush worker has
already collected it, the late result is discarded (the caller is gone
either way). ``serve_timeouts`` counts both flavours, so a dead client
can never wedge admission control.

Telemetry: ``submit`` runs on the caller's context (the server's
per-request scope), recording a ``batch_wait`` span — with a
``tile_sweep`` child carrying the batch's measured sweep seconds — plus
request counters; the flush worker runs under the batcher's owning
context (the server aggregate), where the pipeline's own sweep spans and
counters land.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

import numpy as np

from ..exceptions import DataError, ServerOverloadedError, ServingError
from ..telemetry.context import Span, TelemetryContext, activate, current_context
from .engine import PredictionEngine

__all__ = ["MicroBatcher", "BatchPolicy"]


class BatchPolicy:
    """The coalescing policy knobs, validated once.

    ``max_batch_rows=1`` degenerates to no batching (every request is its
    own sweep); ``max_wait_ms=0`` flushes eagerly (whatever is queued when
    the worker wakes forms the batch).
    """

    __slots__ = ("max_batch_rows", "max_wait_ms", "max_queue_rows")

    def __init__(
        self,
        max_batch_rows: int = 256,
        max_wait_ms: float = 2.0,
        max_queue_rows: int = 4096,
    ) -> None:
        if max_batch_rows < 1:
            raise DataError("max_batch_rows must be at least 1")
        if max_wait_ms < 0:
            raise DataError("max_wait_ms must be non-negative")
        if max_queue_rows < max_batch_rows:
            raise DataError("max_queue_rows must be at least max_batch_rows")
        self.max_batch_rows = int(max_batch_rows)
        self.max_wait_ms = float(max_wait_ms)
        self.max_queue_rows = int(max_queue_rows)

    def as_dict(self) -> dict:
        return {
            "max_batch_rows": self.max_batch_rows,
            "max_wait_ms": self.max_wait_ms,
            "max_queue_rows": self.max_queue_rows,
        }


class _Pending:
    """One admitted request waiting for its batch to flush."""

    __slots__ = (
        "rows",
        "event",
        "labels",
        "values",
        "error",
        "enqueued",
        "batch_id",
        "batch_rows",
        "batch_requests",
        "sweep_seconds",
        "wait_seconds",
        "generation",
    )

    def __init__(self, rows: np.ndarray, enqueued: float) -> None:
        self.rows = rows
        self.event = threading.Event()
        self.labels: Optional[np.ndarray] = None
        self.values: Optional[np.ndarray] = None
        self.error: Optional[BaseException] = None
        self.enqueued = enqueued
        self.batch_id = -1
        self.batch_rows = 0
        self.batch_requests = 0
        self.sweep_seconds = 0.0
        self.wait_seconds = 0.0
        self.generation = -1


class MicroBatcher:
    """Coalesces concurrent ``submit`` calls into shared engine sweeps.

    Parameters
    ----------
    engine:
        The engine to evaluate batches on — or a zero-argument callable
        returning one, resolved *per flush*. The registry front-end uses
        the callable form so hot-swap reloads and LRU eviction take
        effect on the next batch without rebuilding the batcher.
    policy:
        The :class:`BatchPolicy`; ``None`` uses the defaults.
    context:
        Telemetry context the flush worker reports into (sweep spans,
        batch counters). ``None`` captures the context active at
        construction time.
    """

    def __init__(
        self,
        engine,
        *,
        policy: Optional[BatchPolicy] = None,
        context: Optional[TelemetryContext] = None,
    ) -> None:
        if isinstance(engine, PredictionEngine):
            self._engine_supplier: Callable[[], PredictionEngine] = lambda: engine
        elif callable(engine):
            self._engine_supplier = engine
        else:
            raise DataError("engine must be a PredictionEngine or a supplier of one")
        self.policy = policy or BatchPolicy()
        self._ctx = context if context is not None else current_context()
        self._queue: Deque[_Pending] = deque()
        self._queued_rows = 0
        self._cond = threading.Condition()
        self._closed = False
        self.batches = 0
        #: Generation of the engine the most recent batch flushed on
        #: (-1 before the first flush) — replay harness diagnostics.
        self.last_generation = -1
        self._worker = threading.Thread(
            target=self._run, name="plssvm-serve-batcher", daemon=True
        )
        self._worker.start()

    # -- client side ----------------------------------------------------------

    @property
    def queued_rows(self) -> int:
        with self._cond:
            return self._queued_rows

    def submit(self, X: np.ndarray, timeout: Optional[float] = None):
        """Enqueue rows; block until the batch containing them flushes.

        Returns ``(labels, decision_values)`` for exactly the submitted
        rows (a 1-D input is treated as one row). Raises
        :class:`ServerOverloadedError` when admission would overflow the
        queue, and re-raises any evaluation error verbatim.
        """
        X = np.asarray(X)
        if X.ndim == 1:
            X = X[None, :]
        if X.ndim != 2 or X.shape[0] == 0:
            raise DataError("submit expects one row or a non-empty block of rows")
        pending = _Pending(X, time.perf_counter())
        with self._cond:
            if self._closed:
                raise ServingError("batcher is closed")
            if self._queued_rows + X.shape[0] > self.policy.max_queue_rows:
                ctx = current_context()
                ctx.inc("serve_rejected")
                raise ServerOverloadedError(
                    f"queue full: {self._queued_rows} rows queued, request adds "
                    f"{X.shape[0]}, budget {self.policy.max_queue_rows}",
                    queued_rows=self._queued_rows,
                    max_queue_rows=self.policy.max_queue_rows,
                )
            self._queue.append(pending)
            self._queued_rows += X.shape[0]
            depth = self._queued_rows
            self._cond.notify_all()
        ctx = current_context()
        ctx.set_gauge("serve_queue_rows", depth)
        with ctx.span("batch_wait", rows=X.shape[0]) as wait_span:
            if not pending.event.wait(timeout):
                self._cancel(pending)
                ctx.inc("serve_timeouts")
                raise ServingError(
                    f"request timed out after {timeout}s waiting for its batch"
                )
        if wait_span is not None and pending.error is None:
            # Reconstruct the literal request > batch_wait > tile_sweep
            # chain: the sweep ran on the flush worker under the server
            # aggregate, so graft its measured seconds here as a child.
            wait_span.attrs.update(
                batch_id=pending.batch_id,
                batch_rows=pending.batch_rows,
                batch_requests=pending.batch_requests,
                generation=pending.generation,
            )
            wait_span.children.append(
                Span(
                    name="tile_sweep",
                    ts=wait_span.ts + max(0.0, wait_span.dur - pending.sweep_seconds),
                    dur=pending.sweep_seconds,
                    thread_id=wait_span.thread_id,
                )
            )
        ctx.inc("serve_requests")
        ctx.inc("serve_rows_submitted", X.shape[0])
        if pending.batch_requests > 1:
            ctx.inc("serve_batched_requests")
        ctx.observe("serve_wait_seconds", pending.wait_seconds)
        if pending.error is not None:
            raise pending.error
        return pending.labels, pending.values

    def predict(self, X: np.ndarray, timeout: Optional[float] = None) -> np.ndarray:
        """Labels only — the drop-in for ``model.predict`` under batching."""
        return self.submit(X, timeout)[0]

    def _cancel(self, pending: _Pending) -> bool:
        """Withdraw a timed-out request from the queue.

        Returns ``True`` when the request was still queued (its rows are
        released back to the admission budget); ``False`` when the flush
        worker had already collected it — the worker released the budget
        at collection time and the late result dies with the ``_Pending``.
        """
        with self._cond:
            try:
                self._queue.remove(pending)
            except ValueError:
                return False
            self._queued_rows -= pending.rows.shape[0]
            return True

    # -- worker side ----------------------------------------------------------

    def _collect(self) -> Tuple[List[_Pending], str]:
        """Block until a batch is due, then pop it (admission order).

        Called with ``self._cond`` held. Returns ``(batch, trigger)``
        where ``trigger`` names what released the batch — ``"count"``
        (row target reached), ``"wait"`` (oldest request's deadline
        expired), or ``"drain"`` (close). The batch is empty only when
        the batcher is closed and drained.
        """
        while True:
            while not self._queue and not self._closed:
                self._cond.wait()
            if not self._queue:
                return [], "drain"
            # Deadline of the oldest request; a full batch flushes now.
            deadline = self._queue[0].enqueued + self.policy.max_wait_ms / 1000.0
            while (
                self._queued_rows < self.policy.max_batch_rows
                and not self._closed
            ):
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                self._cond.wait(timeout=remaining)
                if not self._queue:
                    break  # drained by close(); re-enter the outer wait
            if not self._queue:
                continue
            if self._queued_rows >= self.policy.max_batch_rows:
                trigger = "count"
            elif self._closed:
                trigger = "drain"
            else:
                trigger = "wait"
            batch: List[_Pending] = []
            rows = 0
            while self._queue and (
                rows < self.policy.max_batch_rows or not batch
            ):
                # Admit whole requests while under the row target; a
                # single oversized request still forms its own batch.
                if batch and rows + self._queue[0].rows.shape[0] > self.policy.max_batch_rows:
                    break
                pending = self._queue.popleft()
                rows += pending.rows.shape[0]
                batch.append(pending)
            self._queued_rows -= rows
            return batch, trigger

    def _run(self) -> None:
        with activate(self._ctx):
            while True:
                with self._cond:
                    batch, trigger = self._collect()
                if not batch:
                    return
                self._flush(batch, trigger)

    _TRIGGER_COUNTERS = {
        "count": "serve_flush_count_trigger",
        "wait": "serve_flush_max_wait",
        "drain": "serve_flush_drain",
    }

    def _flush(self, batch: List[_Pending], trigger: str = "wait") -> None:
        ctx = current_context()
        rows = sum(p.rows.shape[0] for p in batch)
        now = time.perf_counter()
        batch_id = self.batches
        self.batches += 1
        generation = -1
        try:
            engine = self._engine_supplier()
            generation = engine.generation
            with ctx.span(
                "batch", requests=len(batch), rows=rows, batch_id=batch_id
            ) as span:
                stacked = (
                    batch[0].rows
                    if len(batch) == 1
                    else np.concatenate([p.rows for p in batch], axis=0)
                )
                labels, values = engine.evaluate(stacked)
            sweep_seconds = span.dur if span is not None else 0.0
            self.last_generation = generation
            ctx.inc("serve_batches")
            ctx.inc(self._TRIGGER_COUNTERS.get(trigger, "serve_flush_max_wait"))
            ctx.observe("serve_batch_rows", rows)
            ctx.observe("serve_batch_requests", len(batch))
            start = 0
            for pending in batch:
                stop = start + pending.rows.shape[0]
                pending.labels = labels[start:stop]
                pending.values = values[start:stop]
                start = stop
        except BaseException as exc:  # noqa: BLE001 - handed to the submitters
            sweep_seconds = 0.0
            ctx.inc("serve_batch_errors")
            for pending in batch:
                pending.error = exc
        for pending in batch:
            pending.batch_id = batch_id
            pending.batch_rows = rows
            pending.batch_requests = len(batch)
            pending.sweep_seconds = sweep_seconds
            pending.wait_seconds = now - pending.enqueued
            pending.generation = generation
            pending.event.set()

    # -- lifecycle ------------------------------------------------------------

    def close(self, *, drain: bool = True) -> None:
        """Stop the flush worker.

        ``drain=True`` (default) lets queued requests flush first;
        ``drain=False`` fails them immediately with
        :class:`~repro.exceptions.ServingError`.
        """
        with self._cond:
            self._closed = True
            if not drain:
                orphans = list(self._queue)
                self._queue.clear()
                self._queued_rows = 0
            else:
                orphans = []
            self._cond.notify_all()
        for pending in orphans:
            pending.error = ServingError("batcher closed before the batch flushed")
            pending.event.set()
        self._worker.join(timeout=5.0)

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
