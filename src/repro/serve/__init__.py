"""``repro.serve`` — the micro-batching inference serving subsystem.

Training got four PRs of optimization (tile pipeline, block CG,
preconditioning, mixed precision, telemetry); this package puts the same
machinery under *inference*, where kernel-row evaluation against the
support set amortizes across requests once they are batched:

* :class:`PredictionEngine` — a loaded model kept warm (precomputed RBF
  norms, compute-dtype casts, shared worker pool) whose thread-safe
  ``predict`` routes through the tile pipeline's cross-kernel sweep;
* :class:`MicroBatcher` / :class:`BatchPolicy` — coalesces concurrent
  small requests into one sweep under a max-batch-rows / max-wait-ms
  policy, with a bounded queue and typed
  :class:`~repro.exceptions.ServerOverloadedError` backpressure;
* :class:`ModelRegistry` — named models with a byte-budgeted LRU of warm
  engines and generation-tagged hot-swap reload;
* :class:`ServingApp` / :class:`PLSSVMServer` — the stdlib-only JSON
  HTTP front-end (``/predict``, ``/models``, ``/healthz``, ``/metrics``)
  behind the ``plssvm-serve`` CLI;
* :class:`ServingReport` — the schema-validated ``/metrics`` payload.
"""

from .batcher import BatchPolicy, MicroBatcher
from .engine import PredictionEngine
from .registry import DEFAULT_REGISTRY_MB, ModelRegistry
from .report import (
    SERVING_REPORT_SCHEMA,
    SERVING_REPORT_SCHEMA_VERSION,
    ServingReport,
    build_serving_report,
    validate_serving_report,
)
from .server import PLSSVMServer, ServingApp, serve_forever

__all__ = [
    "PredictionEngine",
    "MicroBatcher",
    "BatchPolicy",
    "ModelRegistry",
    "DEFAULT_REGISTRY_MB",
    "ServingApp",
    "PLSSVMServer",
    "serve_forever",
    "ServingReport",
    "SERVING_REPORT_SCHEMA",
    "SERVING_REPORT_SCHEMA_VERSION",
    "build_serving_report",
    "validate_serving_report",
]
