"""The stdlib HTTP front-end: JSON over ``ThreadingHTTPServer``.

Pure-Python on purpose: the whole reproduction runs on numpy + scipy
alone, and a serving layer that dragged in a web framework would break
that. ``http.server.ThreadingHTTPServer`` gives one thread per connection
— which is precisely the concurrency shape the micro-batcher exists to
coalesce — and the endpoints speak JSON:

* ``POST /predict`` — ``{"model": name?, "rows": [[...], ...]}`` (or a
  single ``"row"``); responds with predictions, decision values, and the
  batch the request rode in. Admission-control rejections surface as
  ``503`` with ``Retry-After``.
* ``POST /models/<name>/reload`` — generation-tagged hot swap:
  re-resolve the model from its current source (or an optional new
  ``{"source": path}``) and answer with the new generation; predictions
  issued after the acknowledgement carry a generation at least that high.
* ``GET /models`` — registry contents with warm/generation state.
* ``GET /healthz`` — liveness plus model count.
* ``GET /metrics`` — the :class:`~repro.serve.report.ServingReport`
  (schema-validated by :func:`~repro.serve.report.validate_serving_report`).

Every request runs under a fresh per-request telemetry scope parented to
the server's aggregate context, so ``/metrics`` sees totals while each
response can report its own wait/batch numbers.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional

import numpy as np

from ..exceptions import (
    DataError,
    ModelNotFoundError,
    PLSSVMError,
    ServerOverloadedError,
)
from ..telemetry.context import TelemetryContext, root_context, scope
from .batcher import BatchPolicy, MicroBatcher
from .registry import ModelRegistry
from .report import build_serving_report, ServingReport

__all__ = ["ServingApp", "PLSSVMServer", "serve_forever"]


class ServingApp:
    """Protocol-independent serving state: registry + per-model batchers.

    Owns the server's aggregate :class:`TelemetryContext` and one
    :class:`MicroBatcher` per model name. Batchers resolve their engine
    through the registry *per flush*, so LRU eviction and hot-swap
    reloads take effect on the next batch without tearing anything down.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        *,
        policy: Optional[BatchPolicy] = None,
        name: str = "plssvm-serve",
        max_spans: int = 4000,
    ) -> None:
        self.registry = registry
        self.policy = policy or BatchPolicy()
        self.context = TelemetryContext(
            name, parent=root_context(), max_spans=max_spans
        )
        self._batchers: Dict[str, MicroBatcher] = {}
        self._lock = threading.Lock()
        self.started = time.time()

    def batcher(self, model: str) -> MicroBatcher:
        """The (lazily created) micro-batcher for one model name."""
        if model not in self.registry:
            raise ModelNotFoundError(model)
        with self._lock:
            batcher = self._batchers.get(model)
            if batcher is None:
                batcher = MicroBatcher(
                    lambda model=model: self.registry.get(model),
                    policy=self.policy,
                    context=self.context,
                )
                self._batchers[model] = batcher
            return batcher

    def default_model(self) -> str:
        models = self.registry.models()
        if len(models) != 1:
            raise DataError(
                "request must name a model (\"model\": ...) when the registry "
                f"holds {len(models)} models"
            )
        return models[0]["name"]

    def predict(self, model: Optional[str], rows: np.ndarray, timeout: Optional[float] = None):
        """Admit rows for ``model`` through its batcher; returns the demuxed
        ``(labels, values, batch_info)`` triple."""
        name = model if model else self.default_model()
        batcher = self.batcher(name)
        start = time.perf_counter()
        labels, values = batcher.submit(rows, timeout=timeout)
        # Per-model latency lands on the server aggregate (not the
        # per-request scope) so /metrics can quote p50/p95/p99 per model.
        self.context.metrics.histogram(f"serve_model_seconds::{name}").observe(
            time.perf_counter() - start
        )
        return name, labels, values

    @property
    def queued_rows(self) -> int:
        with self._lock:
            return sum(b.queued_rows for b in self._batchers.values())

    def report(self, *, server: str = "") -> ServingReport:
        return build_serving_report(
            self.context,
            server=server or self.context.name,
            policy=self.policy,
            registry=self.registry,
            queue_rows=self.queued_rows,
        )

    def close(self) -> None:
        with self._lock:
            batchers = list(self._batchers.values())
            self._batchers.clear()
        for batcher in batchers:
            batcher.close()


class _Handler(BaseHTTPRequestHandler):
    """One request; the app hangs off the server object."""

    server_version = "plssvm-serve/1.0"
    protocol_version = "HTTP/1.1"

    # -- plumbing -------------------------------------------------------------

    @property
    def app(self) -> ServingApp:
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, fmt, *args):  # noqa: D102 - silence default stderr spam
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(fmt, *args)

    def _send_json(self, status: int, payload: dict, *, headers: Optional[dict] = None) -> None:
        body = json.dumps(payload, default=_jsonify).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for key, value in (headers or {}).items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str, *, headers: Optional[dict] = None) -> None:
        self._send_json(status, {"error": message, "status": status}, headers=headers)

    # -- GET ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            self._send_json(
                200,
                {
                    "status": "ok",
                    "uptime_seconds": self.app.context.now(),
                    "models": len(self.app.registry),
                },
            )
        elif path == "/models":
            self._send_json(200, {"models": self.app.registry.models()})
        elif path == "/metrics":
            report = self.app.report(server=_server_label(self.server))
            self._send_json(200, report.as_dict())
        else:
            self._error(404, f"unknown path {self.path!r}")

    # -- POST -----------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0].rstrip("/")
        if path.startswith("/models/") and path.endswith("/reload"):
            self._do_reload(path[len("/models/") : -len("/reload")].strip("/"))
            return
        if path != "/predict":
            self._error(404, f"unknown path {self.path!r}")
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            payload = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, json.JSONDecodeError) as exc:
            self._error(400, f"request body is not valid JSON: {exc}")
            return
        with scope("request", parent=self.app.context) as ctx:
            start = time.perf_counter()
            try:
                model, rows = _parse_predict(payload)
                name, labels, values = self.app.predict(model, rows)
            except ServerOverloadedError as exc:
                ctx.observe("serve_request_seconds", time.perf_counter() - start)
                self._error(
                    503,
                    str(exc),
                    headers={"Retry-After": "1"},
                )
                return
            except ModelNotFoundError as exc:
                ctx.inc("serve_errors")
                self._error(404, f"unknown model {exc.args[0]!r}")
                return
            except (DataError, PLSSVMError) as exc:
                ctx.inc("serve_errors")
                self._error(400, str(exc))
                return
            elapsed = time.perf_counter() - start
            ctx.observe("serve_request_seconds", elapsed)
            request_span = _find_child(ctx.root_span, "batch_wait")
            batch = dict(request_span.attrs) if request_span is not None else {}
            self._send_json(
                200,
                {
                    "model": name,
                    "generation": batch.get("generation", -1),
                    "rows": int(rows.shape[0]),
                    "predictions": labels.tolist(),
                    "decision_values": values.tolist(),
                    "seconds": elapsed,
                    "batch": batch,
                },
            )

    def _do_reload(self, name: str) -> None:
        """``POST /models/<name>/reload`` — generation-tagged hot swap."""
        if not name:
            self._error(404, "reload needs a model name: /models/<name>/reload")
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            payload = json.loads(self.rfile.read(length) or b"{}") if length else {}
        except (ValueError, json.JSONDecodeError) as exc:
            self._error(400, f"request body is not valid JSON: {exc}")
            return
        source = None
        if isinstance(payload, dict) and payload.get("source") is not None:
            source = payload["source"]
            if not isinstance(source, str):
                self._error(400, '"source" must be a path string')
                return
        try:
            generation = self.app.registry.reload(name, source)
        except ModelNotFoundError:
            self._error(404, f"unknown model {name!r}")
            return
        except PLSSVMError as exc:
            self._error(400, str(exc))
            return
        self.app.context.inc("serve_reloads")
        self._send_json(200, {"model": name, "generation": generation})


def _find_child(span, name: str):
    for child in span.children:
        if child.name == name:
            return child
    return None


def _parse_predict(payload: dict):
    if not isinstance(payload, dict):
        raise DataError("request body must be a JSON object")
    model = payload.get("model")
    if model is not None and not isinstance(model, str):
        raise DataError('"model" must be a string')
    if "rows" in payload:
        rows = payload["rows"]
    elif "row" in payload:
        rows = [payload["row"]]
    else:
        raise DataError('request must carry "rows" (list of rows) or "row"')
    try:
        X = np.asarray(rows, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise DataError(f"rows are not numeric: {exc}") from None
    if X.ndim != 2 or X.shape[0] == 0:
        raise DataError('"rows" must be a non-empty list of equal-length rows')
    return model, X


def _server_label(server) -> str:
    host, port = server.server_address[:2]
    return f"{host}:{port}"


def _jsonify(value):
    if hasattr(value, "item"):
        return value.item()
    return str(value)


class PLSSVMServer(ThreadingHTTPServer):
    """``ThreadingHTTPServer`` bound to a :class:`ServingApp`."""

    daemon_threads = True
    # socketserver's default listen backlog is 5; a burst of concurrent
    # clients — the workload the batcher exists for — would see
    # connection resets before the batcher ever got a say.
    request_queue_size = 128

    def __init__(self, address, app: ServingApp, *, verbose: bool = False) -> None:
        super().__init__(address, _Handler)
        self.app = app
        self.verbose = verbose

    def shutdown(self) -> None:  # noqa: D102 - also drain the batchers
        super().shutdown()
        self.app.close()


def serve_forever(
    registry: ModelRegistry,
    *,
    host: str = "127.0.0.1",
    port: int = 8000,
    policy: Optional[BatchPolicy] = None,
    verbose: bool = False,
) -> None:
    """Blocking convenience entry point (the CLI's core)."""
    app = ServingApp(registry, policy=policy)
    server = PLSSVMServer((host, port), app, verbose=verbose)
    try:
        server.serve_forever()
    finally:
        server.shutdown()
        server.server_close()
