"""The warm per-model prediction engine behind the serving subsystem.

Offline, ``LSSVMModel.decision_function`` re-derives everything a kernel
evaluation needs on every call: the RBF support-vector norms, any
``compute_dtype`` cast of the support set, and (implicitly) a thread to
run on. Amortized over one CLI invocation that is noise; amortized over a
server's lifetime it is the entire point — kernel-SVM inference cost is
dominated by evaluating kernel rows against the support set (the same
observation PLSSVM's training pipeline exploits), and all of the
row-independent half of that work can be hoisted to model-load time.

A :class:`PredictionEngine` does that hoisting: it owns a loaded
:class:`~repro.core.model.LSSVMModel` plus a warm
:class:`~repro.core.tile_pipeline.TilePipeline` over its support vectors
(precomputed row norms, compute-dtype cast, shared worker pool) and
routes every prediction through
:meth:`~repro.core.tile_pipeline.TilePipeline.cross_sweep` — threaded,
budget-tiled, mixed-precision capable — instead of the naive path.
``predict`` is thread-safe and stateless per call, so one engine serves
arbitrarily many concurrent callers (the micro-batcher counts on it).

Compact :class:`~repro.core.model.FeatureMapModel` artifacts take a
generalized primal fast path instead: there is no support set to tile
over, so the engine skips the pipeline entirely and serves
``z(x) @ w + b`` — the same O(r)-per-row expression the model itself
evaluates, hence bit-identical to offline prediction. The linear
kernel's materialized-``w`` path is the special case of this with an
identity feature map.
"""

from __future__ import annotations

import threading
from typing import Optional, Tuple

import numpy as np

from ..core.model import FeatureMapModel, LSSVMModel
from ..core.tile_pipeline import TilePipeline
from ..exceptions import DataError
from ..telemetry.context import current_context
from ..types import KernelType

__all__ = ["PredictionEngine"]


class PredictionEngine:
    """A loaded model kept warm for repeated, concurrent prediction.

    Parameters
    ----------
    model:
        The fitted binary LS-SVM to serve.
    solver_threads:
        Worker-thread count for the tile sweeps (``None`` resolves like
        the training pipeline: ``PLSSVM_NUM_THREADS`` / CPU count).
    compute_dtype:
        Mixed precision for the kernel tiles (``float32`` halves the
        bandwidth per request); decision values are accumulated back into
        the model's ``dtype``. ``None`` keeps full precision — and with
        it bit-identity against ``model.predict``.
    tile_rows:
        Row-tile height over the *query* rows of each batch; bounds peak
        memory at ``tile_rows * num_support_vectors`` kernel entries per
        worker.
    name / generation:
        Registry bookkeeping: the model's registered name and the
        hot-swap generation this engine was built from. Stamped into
        responses so a client can detect which model build answered.
    """

    def __init__(
        self,
        model: LSSVMModel,
        *,
        solver_threads: Optional[int] = None,
        compute_dtype=None,
        tile_rows: int = 1024,
        name: str = "default",
        generation: int = 0,
    ) -> None:
        self.model = model
        self.name = name
        self.generation = int(generation)
        param = model.param
        self._transform = None
        if isinstance(model, FeatureMapModel):
            # Compact artifact: no support set, no pipeline — the whole
            # warm state is the (d, r) feature map plus the primal weights.
            self.pipeline = None
            self._alpha = None
            self._weight = np.ascontiguousarray(model.weights, dtype=param.dtype)
            self._transform = model.transform
        else:
            # cache_mb=0: the square support x support cache never pays off
            # in serving (queries are novel rows); the pipeline is kept for
            # its warm norms, casts, and pool.
            self.pipeline = TilePipeline(
                model.support_vectors,
                param.kernel,
                gamma=param.gamma,
                degree=param.degree,
                coef0=param.coef0,
                tile_rows=tile_rows,
                num_threads=solver_threads,
                cache_mb=0.0,
                dtype=param.dtype,
                compute_dtype=compute_dtype,
            )
            self._alpha = np.ascontiguousarray(model.alpha, dtype=param.dtype)
            # The linear kernel's O(d)-per-point primal fast path:
            # materialize w once at load time instead of lazily on the
            # first request.
            self._weight = (
                model.weight_vector() if param.kernel is KernelType.LINEAR else None
            )
        self._lock = threading.Lock()
        self.requests = 0
        self.rows_served = 0

    # -- introspection --------------------------------------------------------

    @property
    def num_features(self) -> int:
        return self.model.num_features

    @property
    def num_support_vectors(self) -> int:
        return self.model.num_support_vectors

    @property
    def nbytes(self) -> int:
        """Resident bytes of the warm state (the registry's eviction unit)."""
        if self.pipeline is None:
            return int(self.model.nbytes)
        total = self.model.support_vectors.nbytes + self._alpha.nbytes
        pipe = self.pipeline
        if pipe._points_c is not pipe.points:
            total += pipe._points_c.nbytes
        if pipe.row_norms is not None:
            total += pipe.row_norms.nbytes
        if self._weight is not None:
            total += self._weight.nbytes
        return total

    def describe(self) -> dict:
        """JSON-ready summary for the ``/models`` endpoint."""
        if self.pipeline is not None:
            compute_dtype = self.pipeline.compute_dtype.name
        else:
            compute_dtype = np.dtype(self.model.param.dtype).name
        summary = {
            "name": self.name,
            "generation": self.generation,
            "kernel": self.model.param.kernel.name.lower(),
            "num_support_vectors": self.num_support_vectors,
            "num_features": self.num_features,
            "compute_dtype": compute_dtype,
            "nbytes": int(self.nbytes),
            "requests": self.requests,
            "rows_served": self.rows_served,
        }
        if self._transform is not None:
            summary["kind"] = "compact"
            summary["rank"] = self.model.rank
        return summary

    # -- prediction -----------------------------------------------------------

    def _validate(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=self.model.param.dtype)
        if X.ndim == 1:
            X = X[None, :]
        if X.ndim != 2:
            raise DataError("prediction input must be a row or a 2-D block of rows")
        if X.shape[1] != self.num_features:
            raise DataError(
                f"request has {X.shape[1]} features, model {self.name!r} "
                f"expects {self.num_features}"
            )
        return X

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """``f(x)`` per row, through the warm tile pipeline.

        Matches ``LSSVMModel.decision_function`` bit for bit at full
        precision: the same kernel expressions run on the same dtype, the
        pipeline merely supplies the precomputed halves.
        """
        X = self._validate(X)
        if self._weight is not None:
            # Generalized primal fast path: identity map for the linear
            # kernel, the random Fourier map for compact models. Either
            # way f(x) = z(x) @ w + b, O(features-out) per row.
            Z = X if self._transform is None else self._transform(X)
            f = Z @ self._weight + self.model.bias
        else:
            f = self.pipeline.cross_sweep(X, self._alpha)
            f += self.model.bias
        with self._lock:
            self.requests += 1
            self.rows_served += X.shape[0]
        ctx = current_context()
        ctx.inc("serve_rows", X.shape[0])
        return f

    def evaluate(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """``(labels, decision_values)`` for a block of rows."""
        f = self.decision_function(X)
        pos, neg = self.model.labels
        return np.where(f >= 0.0, pos, neg), f

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted class labels (original label alphabet); thread-safe."""
        return self.evaluate(X)[0]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PredictionEngine({self.name!r}, gen={self.generation}, "
            f"sv={self.num_support_vectors}, kernel={self.model.param.kernel.name})"
        )
