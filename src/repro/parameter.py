"""SVM hyper-parameters (the Python counterpart of ``plssvm::parameter``).

A single frozen dataclass carries every knob of the training pipeline:
kernel choice and its coefficients, the regularization ``C``, the CG
termination criterion ``epsilon`` and iteration cap, and the floating point
working precision (the C++ library's single template parameter
``real_type``).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from .exceptions import InvalidParameterError
from .types import KernelType

__all__ = [
    "Parameter",
    "SolverConfig",
    "ResourceConfig",
    "DEFAULT_EPSILON",
    "resolve_gamma",
]

#: Default relative residual used by the PLSSVM command line (`--epsilon`).
DEFAULT_EPSILON = 1e-3


@dataclasses.dataclass(frozen=True)
class Parameter:
    """Hyper-parameters of an LS-SVM training run.

    Parameters
    ----------
    kernel:
        Kernel function, see :class:`repro.types.KernelType`. Accepts enum
        values, LIBSVM integer codes, or names (``"linear"``, ``"rbf"`` ...).
    cost:
        Regularization parameter ``C > 0`` (LIBSVM ``-c``). Appears as the
        ``1/C`` ridge on the diagonal of the LS-SVM system.
    gamma:
        Kernel coefficient for polynomial/rbf/sigmoid kernels. ``None``
        requests LIBSVM's default of ``1 / num_features``, resolved when the
        data shape is known (:func:`resolve_gamma`).
    degree:
        Polynomial degree (LIBSVM ``-d``).
    coef0:
        Additive constant of polynomial/sigmoid kernels (LIBSVM ``-r``).
    epsilon:
        Relative residual termination criterion of the CG solver.
    max_iter:
        CG iteration cap. ``None`` uses the system size (CG converges in at
        most ``n`` steps in exact arithmetic).
    dtype:
        Working floating point precision; ``numpy.float64`` (default) or
        ``numpy.float32``, mirroring the C++ ``real_type`` template switch.
    """

    kernel: KernelType = KernelType.LINEAR
    cost: float = 1.0
    gamma: Optional[float] = None
    degree: int = 3
    coef0: float = 0.0
    epsilon: float = DEFAULT_EPSILON
    max_iter: Optional[int] = None
    dtype: np.dtype = np.dtype(np.float64)

    def __post_init__(self) -> None:
        object.__setattr__(self, "kernel", KernelType.from_name(self.kernel))
        object.__setattr__(self, "dtype", np.dtype(self.dtype))
        if self.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise InvalidParameterError(
                f"dtype must be float32 or float64, got {self.dtype}"
            )
        if not np.isfinite(self.cost) or self.cost <= 0.0:
            raise InvalidParameterError(f"cost (C) must be positive, got {self.cost}")
        if self.gamma is not None and (not np.isfinite(self.gamma) or self.gamma <= 0.0):
            raise InvalidParameterError(f"gamma must be positive, got {self.gamma}")
        if self.degree < 1 or int(self.degree) != self.degree:
            raise InvalidParameterError(
                f"degree must be a positive integer, got {self.degree}"
            )
        if not np.isfinite(self.epsilon) or self.epsilon <= 0.0 or self.epsilon >= 1.0:
            raise InvalidParameterError(
                f"epsilon must lie in (0, 1), got {self.epsilon}"
            )
        if self.max_iter is not None and self.max_iter < 1:
            raise InvalidParameterError(
                f"max_iter must be positive, got {self.max_iter}"
            )

    def with_gamma_for(self, num_features: int) -> "Parameter":
        """Return a copy with ``gamma`` resolved for ``num_features`` columns."""
        return dataclasses.replace(self, gamma=resolve_gamma(self, num_features))

    def replace(self, **kwargs) -> "Parameter":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **kwargs)

    def kernel_kwargs(self) -> dict:
        """Keyword arguments consumed by :mod:`repro.core.kernels` functions."""
        return {"gamma": self.gamma, "degree": self.degree, "coef0": self.coef0}

    def describe(self) -> str:
        """Human-readable one-line summary (used by the CLI's verbose mode)."""
        gamma = "1/num_features" if self.gamma is None else f"{self.gamma:g}"
        parts = [f"kernel={self.kernel}", f"C={self.cost:g}"]
        if self.kernel is not KernelType.LINEAR:
            parts.append(f"gamma={gamma}")
        if self.kernel in (KernelType.POLYNOMIAL, KernelType.SIGMOID):
            parts.append(f"coef0={self.coef0:g}")
        if self.kernel is KernelType.POLYNOMIAL:
            parts.append(f"degree={self.degree}")
        parts.append(f"epsilon={self.epsilon:g}")
        parts.append(f"dtype={self.dtype}")
        return " ".join(parts)


@dataclasses.dataclass(frozen=True)
class SolverConfig:
    """Grouped solver-strategy knobs (replaces the flat estimator kwargs).

    Collects the arguments that select and tune the *solve* — strategy,
    randomized ranks and seeds, polish refinement, and the CG
    preconditioner — into one typed object::

        LSSVC(kernel="rbf", C=10, config=SolverConfig(solver="nystrom",
                                                      solver_rank=256))

    Passing the equivalent flat keywords still works but emits a
    ``DeprecationWarning``; ``get_params``/``set_params``/``clone``
    round-trip both forms.
    """

    solver: str = "cg"
    solver_rank: Optional[int] = None
    solver_seed: int = 0
    polish_iters: int = 0
    precondition: Optional[str] = None
    precond_rank: Optional[int] = None
    precond_rng: Optional[object] = 0

    #: Estimator keyword names mirrored by this config (declaration order).
    fields = ()

    def as_kwargs(self) -> dict:
        """The equivalent flat estimator keyword arguments."""
        return {name: getattr(self, name) for name in type(self).fields}


@dataclasses.dataclass(frozen=True)
class ResourceConfig:
    """Grouped execution-resource knobs (threads, caches, budgets, faults).

    Collects the arguments that shape *how* the solve runs — worker
    threads, the kernel-tile cache, mixed precision, fault
    injection/recovery, and the out-of-core memory budget and row
    sharding — into one typed object accepted as
    ``LSSVC(resources=ResourceConfig(...))``.
    """

    solver_threads: Optional[int] = None
    tile_cache_mb: Optional[float] = None
    compute_dtype: Optional[object] = None
    fault_plan: Optional[object] = None
    checkpoint_interval: Optional[int] = None
    max_retries: int = 3
    memory_budget_mb: Optional[float] = None
    shard_rows: Optional[int] = None

    fields = ()

    def as_kwargs(self) -> dict:
        """The equivalent flat estimator keyword arguments."""
        return {name: getattr(self, name) for name in type(self).fields}


SolverConfig.fields = tuple(f.name for f in dataclasses.fields(SolverConfig))
ResourceConfig.fields = tuple(f.name for f in dataclasses.fields(ResourceConfig))


def resolve_gamma(param: Parameter, num_features: int) -> Optional[float]:
    """Resolve the effective ``gamma`` for a data set with ``num_features``.

    The linear kernel ignores gamma entirely and keeps ``None``; all other
    kernels fall back to LIBSVM's default ``1 / num_features`` when the user
    did not set a value.
    """
    if param.kernel is KernelType.LINEAR:
        return param.gamma
    if param.gamma is not None:
        return param.gamma
    if num_features < 1:
        raise InvalidParameterError("cannot resolve gamma for empty feature space")
    return 1.0 / float(num_features)
