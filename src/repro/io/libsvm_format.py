"""The LIBSVM sparse data file format.

Each line is ``<label> <index>:<value> <index>:<value> ...`` with 1-based,
strictly increasing feature indices; ``#`` starts a comment. PLSSVM parses
sparse files but computes on dense data — "when parsing sparse data, we
allocate memory for all features including those that are zero" (§IV-H) —
so :func:`read_libsvm_file` returns a dense array. The reader is the
``read`` component of the paper's runtime breakdown.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from ..exceptions import FileFormatError

__all__ = ["read_libsvm_file", "write_libsvm_file"]


def read_libsvm_file(
    path: Union[str, Path],
    *,
    num_features: Optional[int] = None,
    dtype=np.float64,
) -> Tuple[np.ndarray, np.ndarray]:
    """Parse a LIBSVM data file into ``(X_dense, y)``.

    Parameters
    ----------
    path:
        File to read.
    num_features:
        Pad/validate to this many columns (needed when test data misses
        trailing features the training data had). ``None`` infers the
        maximum index present.

    Unlabeled rows — lines that start directly with an ``index:value``
    feature entry, the common shape of real-world *test* files — are
    accepted and reported as ``NaN`` labels, so prediction tooling can
    distinguish "no ground truth" from any real label value. Training
    entry points reject NaN labels downstream.
    """
    path = Path(path)
    labels: List[float] = []
    rows: List[List[Tuple[int, float]]] = []
    max_index = 0
    with path.open("r", encoding="ascii") as f:
        for lineno, raw in enumerate(f, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            tokens = line.split()
            if ":" in tokens[0]:
                # No leading label: the whole line is features (an
                # unlabeled test row, mirroring svm-predict's tolerance).
                label = float("nan")
            else:
                try:
                    label = float(tokens[0])
                except ValueError:
                    raise FileFormatError(
                        f"{path}:{lineno}: malformed label {tokens[0]!r}"
                    ) from None
                tokens = tokens[1:]
            entries: List[Tuple[int, float]] = []
            last_index = 0
            for token in tokens:
                idx_str, sep, val_str = token.partition(":")
                if not sep:
                    raise FileFormatError(
                        f"{path}:{lineno}: malformed feature entry {token!r}"
                    )
                try:
                    idx, val = int(idx_str), float(val_str)
                except ValueError:
                    raise FileFormatError(
                        f"{path}:{lineno}: malformed feature entry {token!r}"
                    ) from None
                if idx < 1:
                    raise FileFormatError(
                        f"{path}:{lineno}: feature indices are 1-based, got {idx}"
                    )
                if idx <= last_index:
                    raise FileFormatError(
                        f"{path}:{lineno}: feature indices must increase, "
                        f"got {idx} after {last_index}"
                    )
                last_index = idx
                entries.append((idx, val))
            max_index = max(max_index, last_index)
            labels.append(label)
            rows.append(entries)

    if not rows:
        raise FileFormatError(f"{path}: file contains no data points")
    width = num_features if num_features is not None else max_index
    if width < max_index:
        raise FileFormatError(
            f"{path}: file has feature index {max_index}, "
            f"but only {width} features were requested"
        )
    X = np.zeros((len(rows), max(width, 1)), dtype=dtype)
    for i, entries in enumerate(rows):
        for idx, val in entries:
            X[i, idx - 1] = val
    return X, np.asarray(labels, dtype=dtype)


def write_libsvm_file(
    path: Union[str, Path],
    X: np.ndarray,
    y: np.ndarray,
    *,
    write_zeros: bool = False,
) -> None:
    """Write ``(X, y)`` in LIBSVM format.

    ``write_zeros=True`` emits every feature including zeros (producing a
    "dense" file, like PLSSVM's data writer); the default omits zeros,
    producing a classic sparse file.
    """
    X = np.asarray(X)
    y = np.asarray(y).ravel()
    if X.ndim != 2:
        raise FileFormatError("data must be 2-D")
    if X.shape[0] != y.shape[0]:
        raise FileFormatError("data and labels disagree in length")
    path = Path(path)
    with path.open("w", encoding="ascii") as f:
        for label, row in zip(y, X):
            parts = [_format_number(label)]
            for idx, value in enumerate(row, start=1):
                if write_zeros or value != 0.0:
                    parts.append(f"{idx}:{value:.17g}")
            f.write(" ".join(parts))
            f.write("\n")


def _format_number(value: float) -> str:
    value = float(value)
    return f"{int(value)}" if value.is_integer() else f"{value:.17g}"
