"""The LIBSVM sparse data file format.

Each line is ``<label> <index>:<value> <index>:<value> ...`` with 1-based,
strictly increasing feature indices; ``#`` starts a comment. PLSSVM parses
sparse files but computes on dense data — "when parsing sparse data, we
allocate memory for all features including those that are zero" (§IV-H) —
so :func:`read_libsvm_file` returns a dense array. The reader is the
``read`` component of the paper's runtime breakdown.

The parser is two-pass: :func:`scan_libsvm_file` first counts rows and the
maximum feature index (collecting labels into a geometrically-grown array),
then the second pass writes values straight into the preallocated dense
matrix. Peak memory is therefore the output array plus one row of tokens —
the earlier single-pass variant accumulated every row as a Python list of
tuples, peaking at a large multiple of the final array size
(``tests/test_out_of_core.py`` guards the regression with ``tracemalloc``).
The same passes back the out-of-core spill converter in
:mod:`repro.io.chunked`, which never holds more than one row block.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, List, Optional, Tuple, Union

import numpy as np

from ..exceptions import FileFormatError

__all__ = [
    "read_libsvm_file",
    "write_libsvm_file",
    "scan_libsvm_file",
    "iter_libsvm_rows",
]


def _parse_entry(
    path: Path,
    lineno: int,
    token: str,
    last_index: int,
    *,
    with_value: bool = True,
) -> Tuple[int, float]:
    """Validate one ``index:value`` token; returns ``(index, value)``.

    ``with_value=False`` skips the float conversion (the scanning pass only
    needs indices); the value is then reported as 0.0.
    """
    idx_str, sep, val_str = token.partition(":")
    if not sep:
        raise FileFormatError(f"{path}:{lineno}: malformed feature entry {token!r}")
    try:
        idx = int(idx_str)
        val = float(val_str) if with_value else 0.0
    except ValueError:
        raise FileFormatError(
            f"{path}:{lineno}: malformed feature entry {token!r}"
        ) from None
    if idx < 1:
        raise FileFormatError(
            f"{path}:{lineno}: feature indices are 1-based, got {idx}"
        )
    if idx <= last_index:
        raise FileFormatError(
            f"{path}:{lineno}: feature indices must increase, "
            f"got {idx} after {last_index}"
        )
    return idx, val


def iter_libsvm_rows(
    path: Union[str, Path]
) -> Iterator[Tuple[int, float, List[str]]]:
    """Yield ``(lineno, label, feature_tokens)`` per data row, streaming.

    Comments and blank lines are skipped. Unlabeled rows — lines that start
    directly with an ``index:value`` entry, the common shape of real-world
    *test* files — yield ``NaN`` labels so prediction tooling can
    distinguish "no ground truth" from any real label value. Feature tokens
    are returned raw (validated by the caller via the parsing helpers), so
    iterating holds at most one row in memory.
    """
    path = Path(path)
    with path.open("r", encoding="ascii") as f:
        for lineno, raw in enumerate(f, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            tokens = line.split()
            if ":" in tokens[0]:
                # No leading label: the whole line is features (an
                # unlabeled test row, mirroring svm-predict's tolerance).
                yield lineno, float("nan"), tokens
                continue
            try:
                label = float(tokens[0])
            except ValueError:
                raise FileFormatError(
                    f"{path}:{lineno}: malformed label {tokens[0]!r}"
                ) from None
            yield lineno, label, tokens[1:]


def scan_libsvm_file(
    path: Union[str, Path]
) -> Tuple[int, int, np.ndarray]:
    """Counting pass: ``(num_rows, max_index, labels)`` without feature values.

    Labels are collected into a float64 array grown geometrically (never a
    per-row Python list), so the scan's footprint is O(num_rows) floats.
    """
    path = Path(path)
    labels = np.empty(1024, dtype=np.float64)
    count = 0
    max_index = 0
    for lineno, label, tokens in iter_libsvm_rows(path):
        last_index = 0
        for token in tokens:
            last_index, _ = _parse_entry(
                path, lineno, token, last_index, with_value=False
            )
        max_index = max(max_index, last_index)
        if count == labels.shape[0]:
            grown = np.empty(labels.shape[0] * 2, dtype=np.float64)
            grown[:count] = labels
            labels = grown
        labels[count] = label
        count += 1
    return count, max_index, labels[:count].copy()


def _resolve_width(
    path: Path, max_index: int, num_features: Optional[int]
) -> int:
    width = num_features if num_features is not None else max_index
    if width < max_index:
        raise FileFormatError(
            f"{path}: file has feature index {max_index}, "
            f"but only {width} features were requested"
        )
    return max(width, 1)


def read_libsvm_file(
    path: Union[str, Path],
    *,
    num_features: Optional[int] = None,
    dtype=np.float64,
) -> Tuple[np.ndarray, np.ndarray]:
    """Parse a LIBSVM data file into ``(X_dense, y)``.

    Parameters
    ----------
    path:
        File to read.
    num_features:
        Pad/validate to this many columns (needed when test data misses
        trailing features the training data had). ``None`` infers the
        maximum index present.

    Unlabeled rows — lines that start directly with an ``index:value``
    feature entry, the common shape of real-world *test* files — are
    accepted and reported as ``NaN`` labels, so prediction tooling can
    distinguish "no ground truth" from any real label value. Training
    entry points reject NaN labels downstream.
    """
    path = Path(path)
    num_rows, max_index, labels = scan_libsvm_file(path)
    if num_rows == 0:
        raise FileFormatError(f"{path}: file contains no data points")
    width = _resolve_width(path, max_index, num_features)
    X = np.zeros((num_rows, width), dtype=dtype)
    i = 0
    for lineno, _, tokens in iter_libsvm_rows(path):
        if i >= num_rows:
            raise FileFormatError(f"{path}: file changed between parsing passes")
        row = X[i]
        last_index = 0
        for token in tokens:
            last_index, val = _parse_entry(path, lineno, token, last_index)
            row[last_index - 1] = val
        i += 1
    if i != num_rows:
        raise FileFormatError(f"{path}: file changed between parsing passes")
    return X, labels.astype(dtype, copy=False)


def write_libsvm_file(
    path: Union[str, Path],
    X: np.ndarray,
    y: np.ndarray,
    *,
    write_zeros: bool = False,
) -> None:
    """Write ``(X, y)`` in LIBSVM format.

    ``write_zeros=True`` emits every feature including zeros (producing a
    "dense" file, like PLSSVM's data writer); the default omits zeros,
    producing a classic sparse file.
    """
    X = np.asarray(X)
    y = np.asarray(y).ravel()
    if X.ndim != 2:
        raise FileFormatError("data must be 2-D")
    if X.shape[0] != y.shape[0]:
        raise FileFormatError("data and labels disagree in length")
    path = Path(path)
    with path.open("w", encoding="ascii") as f:
        for label, row in zip(y, X):
            parts = [_format_number(label)]
            for idx, value in enumerate(row, start=1):
                if write_zeros or value != 0.0:
                    parts.append(f"{idx}:{value:.17g}")
            f.write(" ".join(parts))
            f.write("\n")


def _format_number(value: float) -> str:
    value = float(value)
    return f"{int(value)}" if value.is_integer() else f"{value:.17g}"
