"""Feature scaling à la ``svm-scale`` (used for SAT-6 in §IV-D).

LIBSVM's ``svm-scale`` maps every feature linearly onto a target interval
(the paper scales SAT-6 to ``[-1, 1]``), saves the per-feature ranges to a
scale-factor file, and re-applies the *training* ranges to test data. The
same three operations live here: :meth:`FeatureScaler.fit` /
:meth:`~FeatureScaler.transform`, :func:`save_scaling` and
:func:`load_scaling` (the file layout matches svm-scale's ``-s``/``-r``
files: an ``x`` header, the target interval, then ``index min max`` rows).
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

import numpy as np

from ..exceptions import ScalingError

__all__ = ["FeatureScaler", "save_scaling", "load_scaling"]


class FeatureScaler:
    """Per-feature linear scaling onto ``[lower, upper]``.

    Constant features (min == max) are mapped to the interval midpoint,
    matching svm-scale's behaviour of effectively zeroing them out.
    """

    def __init__(self, lower: float = -1.0, upper: float = 1.0) -> None:
        if not np.isfinite(lower) or not np.isfinite(upper) or lower >= upper:
            raise ScalingError(f"invalid target interval [{lower}, {upper}]")
        self.lower = float(lower)
        self.upper = float(upper)
        self.feature_min: Optional[np.ndarray] = None
        self.feature_max: Optional[np.ndarray] = None

    @property
    def is_fitted(self) -> bool:
        return self.feature_min is not None

    def fit(self, X: np.ndarray) -> "FeatureScaler":
        X = np.asarray(X)
        if X.ndim != 2 or X.shape[0] < 1:
            raise ScalingError("scaling requires a non-empty 2-D array")
        self.feature_min = X.min(axis=0).astype(np.float64)
        self.feature_max = X.max(axis=0).astype(np.float64)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if not self.is_fitted:
            raise ScalingError("scaler is not fitted; call fit() or load a scale file")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ScalingError("scaling requires a 2-D array")
        if X.shape[1] != self.feature_min.shape[0]:
            raise ScalingError(
                f"data has {X.shape[1]} features, scale factors cover "
                f"{self.feature_min.shape[0]}"
            )
        span = self.feature_max - self.feature_min
        safe_span = np.where(span > 0, span, 1.0)
        scaled = (X - self.feature_min) / safe_span
        scaled = self.lower + scaled * (self.upper - self.lower)
        midpoint = 0.5 * (self.lower + self.upper)
        return np.where(span > 0, scaled, midpoint)

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X_scaled: np.ndarray) -> np.ndarray:
        """Undo the scaling (constant features return their original value)."""
        if not self.is_fitted:
            raise ScalingError("scaler is not fitted")
        X_scaled = np.asarray(X_scaled, dtype=np.float64)
        span = self.feature_max - self.feature_min
        unit = (X_scaled - self.lower) / (self.upper - self.lower)
        restored = self.feature_min + unit * span
        return np.where(span > 0, restored, self.feature_min)


def save_scaling(scaler: FeatureScaler, path: Union[str, Path]) -> None:
    """Write an svm-scale-compatible scale-factor file."""
    if not scaler.is_fitted:
        raise ScalingError("cannot save an unfitted scaler")
    path = Path(path)
    with path.open("w", encoding="ascii") as f:
        f.write("x\n")
        f.write(f"{scaler.lower:.17g} {scaler.upper:.17g}\n")
        for idx, (lo, hi) in enumerate(
            zip(scaler.feature_min, scaler.feature_max), start=1
        ):
            f.write(f"{idx} {lo:.17g} {hi:.17g}\n")


def load_scaling(path: Union[str, Path]) -> FeatureScaler:
    """Read a scale-factor file written by :func:`save_scaling` (or svm-scale)."""
    path = Path(path)
    lines = [
        ln.strip()
        for ln in path.read_text(encoding="ascii").splitlines()
        if ln.strip()
    ]
    if len(lines) < 2 or lines[0] != "x":
        raise ScalingError(f"{path}: not an svm-scale factor file")
    try:
        lower, upper = (float(v) for v in lines[1].split())
    except ValueError:
        raise ScalingError(f"{path}: malformed target interval line") from None
    scaler = FeatureScaler(lower, upper)
    entries: dict = {}
    for line in lines[2:]:
        parts = line.split()
        if len(parts) != 3:
            raise ScalingError(f"{path}: malformed range line {line!r}")
        try:
            idx = int(parts[0])
            lo, hi = float(parts[1]), float(parts[2])
        except ValueError:
            raise ScalingError(f"{path}: malformed range line {line!r}") from None
        if idx < 1:
            raise ScalingError(f"{path}: feature indices are 1-based, got {idx}")
        entries[idx] = (lo, hi)
    if not entries:
        raise ScalingError(f"{path}: scale file lists no features")
    width = max(entries)
    fmin = np.zeros(width, dtype=np.float64)
    fmax = np.zeros(width, dtype=np.float64)
    for idx, (lo, hi) in entries.items():
        fmin[idx - 1], fmax[idx - 1] = lo, hi
    scaler.feature_min, scaler.feature_max = fmin, fmax
    return scaler
