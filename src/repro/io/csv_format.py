"""CSV data files (conversion convenience around the LIBSVM format).

Real-world tabular data usually arrives as CSV; the LIBSVM ecosystem ships
converters for exactly this reason. The reader accepts a configurable label
column (first by default), an optional header line, and any single-char
delimiter; missing values are rejected loudly (SVMs have no NA semantics).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from ..exceptions import FileFormatError

__all__ = ["read_csv_file", "write_csv_file", "csv_to_libsvm"]


def read_csv_file(
    path: Union[str, Path],
    *,
    label_column: int = 0,
    delimiter: str = ",",
    has_header: Optional[bool] = None,
    dtype=np.float64,
) -> Tuple[np.ndarray, np.ndarray]:
    """Parse a CSV file into ``(X, y)``.

    Parameters
    ----------
    label_column:
        Index of the label column (negative indices count from the end).
    has_header:
        ``None`` sniffs: when the first row contains any non-numeric cell,
        it is treated as a header.
    """
    path = Path(path)

    # Pass 1: count rows and capture the first one (header sniff + width),
    # never materializing the file. The earlier single-pass variant stored
    # every record as a Python list of strings, peaking at a large multiple
    # of the final array size.
    total_rows = 0
    first_row: Optional[List[str]] = None
    for row in _iter_csv_rows(path, delimiter):
        if first_row is None:
            first_row = row
        total_rows += 1
    if first_row is None:
        raise FileFormatError(f"{path}: file contains no data rows")

    if has_header is None:
        has_header = not _is_numeric_row(first_row)
    num_rows = total_rows - 1 if has_header else total_rows
    if num_rows == 0:
        raise FileFormatError(f"{path}: only a header line, no data")

    width = len(first_row)
    if width < 2:
        raise FileFormatError(f"{path}: need a label column plus features")
    label_idx = label_column if label_column >= 0 else width + label_column
    if not 0 <= label_idx < width:
        raise FileFormatError(
            f"{path}: label column {label_column} out of range for {width} columns"
        )

    # Pass 2: fill the preallocated arrays row by row.
    labels = np.empty(num_rows, dtype=dtype)
    X = np.empty((num_rows, width - 1), dtype=dtype)
    i = 0
    for row in _iter_csv_rows(path, delimiter, skip_first=has_header):
        if i >= num_rows:
            raise FileFormatError(f"{path}: file changed between parsing passes")
        _fill_csv_row(path, i, row, width, label_idx, labels, X)
        i += 1
    if i != num_rows:
        raise FileFormatError(f"{path}: file changed between parsing passes")
    return X, labels


def _iter_csv_rows(path: Path, delimiter: str, *, skip_first: bool = False):
    """Stream non-empty, cell-stripped CSV records one at a time."""
    with path.open("r", newline="", encoding="utf-8") as f:
        seen = False
        for record in csv.reader(f, delimiter=delimiter):
            if record and any(cell.strip() for cell in record):
                if skip_first and not seen:
                    seen = True
                    continue
                seen = True
                yield [cell.strip() for cell in record]


def _is_numeric_row(row: List[str]) -> bool:
    try:
        for cell in row:
            float(cell)
        return True
    except ValueError:
        return False


def _fill_csv_row(
    path: Path,
    i: int,
    row: List[str],
    width: int,
    label_idx: int,
    labels: np.ndarray,
    X: np.ndarray,
) -> None:
    """Validate data row ``i`` (0-based) and write it into ``labels``/``X``."""
    if len(row) != width:
        raise FileFormatError(
            f"{path}: row {i + 1} has {len(row)} cells, expected {width}"
        )
    try:
        values = [float(cell) for cell in row]
    except ValueError as exc:
        raise FileFormatError(f"{path}: row {i + 1}: {exc}") from None
    labels[i] = values[label_idx]
    X[i] = values[:label_idx] + values[label_idx + 1 :]


def write_csv_file(
    path: Union[str, Path],
    X: np.ndarray,
    y: np.ndarray,
    *,
    delimiter: str = ",",
    header: bool = True,
) -> None:
    """Write ``(X, y)`` as CSV with the label in the first column."""
    X = np.asarray(X)
    y = np.asarray(y).ravel()
    if X.ndim != 2 or X.shape[0] != y.shape[0]:
        raise FileFormatError("data/labels shape mismatch")
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as f:
        writer = csv.writer(f, delimiter=delimiter)
        if header:
            writer.writerow(["label"] + [f"f{i}" for i in range(1, X.shape[1] + 1)])
        for label, row in zip(y, X):
            writer.writerow([repr(float(label))] + [repr(float(v)) for v in row])


def csv_to_libsvm(
    csv_path: Union[str, Path],
    libsvm_path: Union[str, Path],
    *,
    label_column: int = 0,
    delimiter: str = ",",
    has_header: Optional[bool] = None,
) -> Tuple[int, int]:
    """Convert a CSV file to LIBSVM format; returns ``(points, features)``."""
    from .libsvm_format import write_libsvm_file

    X, y = read_csv_file(
        csv_path, label_column=label_column, delimiter=delimiter, has_header=has_header
    )
    write_libsvm_file(libsvm_path, X, y)
    return X.shape
