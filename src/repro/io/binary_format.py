"""A binary data format for fast reads (the Fig. 2 "read" optimization).

Parsing LIBSVM text dominates small-problem training time (Fig. 2's
small-data regime) and stays a constant tax at every scale. This format
stores the dense matrix raw:

* 32-byte header: magic ``PLSB``, format version, dtype code, row/column
  counts (little-endian);
* the label vector, then the row-major data matrix, both as raw
  little-endian floats.

Reads memory-map the file, so loading is O(1) until the data is touched —
the read component effectively disappears from the component breakdown.
The benchmark ``test_ext_binary_io`` quantifies the speedup over the text
parser.
"""

from __future__ import annotations

import os
import struct
from pathlib import Path
from typing import Tuple, Union

import numpy as np

from ..exceptions import FileFormatError

__all__ = [
    "read_binary_file",
    "write_binary_file",
    "append_binary_rows",
    "read_binary_header",
    "is_binary_file",
    "BinaryHeader",
    "BinaryRowWriter",
    "MAGIC",
]

MAGIC = b"PLSB"
_VERSION = 1
_DTYPE_CODES = {np.dtype(np.float64): 0, np.dtype(np.float32): 1}
_CODE_DTYPES = {code: dtype for dtype, code in _DTYPE_CODES.items()}
_HEADER = struct.Struct("<4sHHQQQ")  # magic, version, dtype, rows, cols, reserved


def write_binary_file(path: Union[str, Path], X: np.ndarray, y: np.ndarray) -> None:
    """Write ``(X, y)`` in the PLSB binary layout."""
    X = np.ascontiguousarray(X)
    y = np.asarray(y).ravel()
    if X.ndim != 2:
        raise FileFormatError("data must be 2-D")
    if X.shape[0] != y.shape[0]:
        raise FileFormatError("data and labels disagree in length")
    dtype = np.dtype(X.dtype)
    if dtype not in _DTYPE_CODES:
        raise FileFormatError(f"unsupported dtype {dtype}; use float32/float64")
    y = y.astype(dtype, copy=False)
    path = Path(path)
    with path.open("wb") as f:
        f.write(
            _HEADER.pack(
                MAGIC, _VERSION, _DTYPE_CODES[dtype], X.shape[0], X.shape[1], 0
            )
        )
        f.write(y.astype("<" + dtype.str[1:], copy=False).tobytes())
        f.write(X.astype("<" + dtype.str[1:], copy=False).tobytes())


def read_binary_file(
    path: Union[str, Path], *, mmap: bool = True
) -> Tuple[np.ndarray, np.ndarray]:
    """Read a PLSB file; returns ``(X, y)``.

    ``mmap=True`` maps the data matrix instead of copying it (read-only
    views; call ``numpy.array(X)`` for a private copy).
    """
    path = Path(path)
    size = path.stat().st_size
    if size < _HEADER.size:
        raise FileFormatError(f"{path}: too small to be a PLSB file")
    with path.open("rb") as f:
        magic, version, dtype_code, rows, cols, _ = _HEADER.unpack(
            f.read(_HEADER.size)
        )
    if magic != MAGIC:
        raise FileFormatError(f"{path}: bad magic {magic!r} (not a PLSB file)")
    if version != _VERSION:
        raise FileFormatError(f"{path}: unsupported format version {version}")
    try:
        dtype = _CODE_DTYPES[dtype_code]
    except KeyError:
        raise FileFormatError(f"{path}: unknown dtype code {dtype_code}") from None
    expected = _HEADER.size + (rows + rows * cols) * dtype.itemsize
    if size != expected:
        raise FileFormatError(
            f"{path}: truncated or padded file ({size} bytes, expected {expected})"
        )
    le_dtype = np.dtype("<" + dtype.str[1:])
    if mmap:
        flat = np.memmap(path, dtype=le_dtype, mode="r", offset=_HEADER.size)
        y = np.asarray(flat[:rows], dtype=dtype)
        X = flat[rows:].reshape(rows, cols).view(le_dtype)
        return np.asarray(X, dtype=dtype), y
    raw = path.read_bytes()[_HEADER.size :]
    flat = np.frombuffer(raw, dtype=le_dtype)
    y = flat[:rows].astype(dtype, copy=True)
    X = flat[rows:].reshape(rows, cols).astype(dtype, copy=True)
    return X, y


def append_binary_rows(
    path: Union[str, Path], X_new: np.ndarray, y_new: np.ndarray
) -> int:
    """Append ``(X_new, y_new)`` rows to an existing PLSB file; returns the
    new row count.

    Labels precede the data matrix in the layout, so growing the label
    vector moves every data byte: the file is rewritten through a sibling
    temp file and published with ``os.replace``, which is atomic on POSIX —
    a concurrent reader (the streaming trainer's :meth:`ChunkedDataset.refresh`,
    or a crash mid-append) only ever observes the old complete file or the
    new complete file, never a torn one. The rewrite streams block-wise, so
    peak memory stays bounded regardless of file size.
    """
    path = Path(path)
    header = read_binary_header(path)
    X_new = np.ascontiguousarray(X_new, dtype=header.dtype)
    if X_new.ndim == 1:
        X_new = X_new.reshape(1, -1)
    y_new = np.asarray(y_new).ravel().astype(header.dtype, copy=False)
    if X_new.ndim != 2 or X_new.shape[1] != header.cols:
        raise FileFormatError(
            f"appended block shape {X_new.shape} does not match "
            f"{header.cols} columns"
        )
    if X_new.shape[0] != y_new.shape[0]:
        raise FileFormatError("appended data and labels disagree in length")
    if X_new.shape[0] == 0:
        return header.rows
    le = "<" + header.dtype.str[1:]
    new_rows = header.rows + X_new.shape[0]
    tmp = path.with_name(path.name + ".append-tmp")
    copy_block = max(1, (8 * 1024 * 1024) // max(header.row_bytes, 1))
    try:
        with path.open("rb") as src, tmp.open("wb") as dst:
            dst.write(
                _HEADER.pack(
                    MAGIC,
                    _VERSION,
                    _DTYPE_CODES[header.dtype],
                    new_rows,
                    header.cols,
                    0,
                )
            )
            src.seek(header.labels_offset)
            dst.write(src.read(header.rows * header.dtype.itemsize))
            dst.write(y_new.astype(le, copy=False).tobytes())
            remaining = header.rows
            while remaining > 0:
                take = min(remaining, copy_block)
                raw = src.read(take * header.row_bytes)
                if len(raw) != take * header.row_bytes:
                    raise FileFormatError(f"{path}: short read during append")
                dst.write(raw)
                remaining -= take
            dst.write(X_new.astype(le, copy=False).tobytes())
            dst.flush()
            os.fsync(dst.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()
    return new_rows


class BinaryHeader:
    """Parsed PLSB header: shape, dtype, and byte offsets into the file.

    ``labels_offset``/``data_offset`` let out-of-core readers seek straight
    to a row block with plain buffered reads (no memory map — mapped pages
    that get touched count toward RSS, which would defeat a memory budget).
    """

    __slots__ = ("dtype", "rows", "cols", "labels_offset", "data_offset")

    def __init__(self, dtype: np.dtype, rows: int, cols: int) -> None:
        self.dtype = np.dtype(dtype)
        self.rows = int(rows)
        self.cols = int(cols)
        self.labels_offset = _HEADER.size
        self.data_offset = _HEADER.size + self.rows * self.dtype.itemsize

    @property
    def row_bytes(self) -> int:
        return self.cols * self.dtype.itemsize

    @property
    def le_dtype(self) -> np.dtype:
        return np.dtype("<" + self.dtype.str[1:])


def read_binary_header(path: Union[str, Path]) -> BinaryHeader:
    """Validate a PLSB file's header and size; returns a :class:`BinaryHeader`."""
    path = Path(path)
    size = path.stat().st_size
    if size < _HEADER.size:
        raise FileFormatError(f"{path}: too small to be a PLSB file")
    with path.open("rb") as f:
        magic, version, dtype_code, rows, cols, _ = _HEADER.unpack(
            f.read(_HEADER.size)
        )
    if magic != MAGIC:
        raise FileFormatError(f"{path}: bad magic {magic!r} (not a PLSB file)")
    if version != _VERSION:
        raise FileFormatError(f"{path}: unsupported format version {version}")
    try:
        dtype = _CODE_DTYPES[dtype_code]
    except KeyError:
        raise FileFormatError(f"{path}: unknown dtype code {dtype_code}") from None
    expected = _HEADER.size + (rows + rows * cols) * dtype.itemsize
    if size != expected:
        raise FileFormatError(
            f"{path}: truncated or padded file ({size} bytes, expected {expected})"
        )
    return BinaryHeader(dtype, rows, cols)


def is_binary_file(path: Union[str, Path]) -> bool:
    """True when ``path`` starts with the PLSB magic (cheap format sniff)."""
    try:
        with Path(path).open("rb") as f:
            return f.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


class BinaryRowWriter:
    """Incremental PLSB writer: header + labels up front, rows appended.

    The out-of-core spill converter knows ``(rows, cols, y)`` after its
    counting pass but streams the data matrix block by block; this writer
    keeps the peak footprint at one block. Use as a context manager —
    closing validates that exactly ``rows`` rows were appended.
    """

    def __init__(
        self, path: Union[str, Path], y: np.ndarray, cols: int, dtype=np.float64
    ) -> None:
        dtype = np.dtype(dtype)
        if dtype not in _DTYPE_CODES:
            raise FileFormatError(f"unsupported dtype {dtype}; use float32/float64")
        y = np.asarray(y).ravel().astype(dtype, copy=False)
        self.path = Path(path)
        self.dtype = dtype
        self.rows = int(y.shape[0])
        self.cols = int(cols)
        self._written = 0
        self._file = self.path.open("wb")
        self._file.write(
            _HEADER.pack(MAGIC, _VERSION, _DTYPE_CODES[dtype], self.rows, self.cols, 0)
        )
        self._file.write(y.astype("<" + dtype.str[1:], copy=False).tobytes())

    def append(self, block: np.ndarray) -> None:
        """Append a ``(k, cols)`` row block (also accepts a single row)."""
        block = np.ascontiguousarray(block, dtype=self.dtype)
        if block.ndim == 1:
            block = block.reshape(1, -1)
        if block.ndim != 2 or block.shape[1] != self.cols:
            raise FileFormatError(
                f"row block shape {block.shape} does not match {self.cols} columns"
            )
        if self._written + block.shape[0] > self.rows:
            raise FileFormatError(
                f"attempted to write more than the declared {self.rows} rows"
            )
        self._file.write(
            block.astype("<" + self.dtype.str[1:], copy=False).tobytes()
        )
        self._written += block.shape[0]

    def close(self) -> None:
        if self._file.closed:
            return
        self._file.close()
        if self._written != self.rows:
            raise FileFormatError(
                f"{self.path}: wrote {self._written} rows, declared {self.rows}"
            )

    def abort(self) -> None:
        """Close without the row-count check (error-path cleanup)."""
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "BinaryRowWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()
