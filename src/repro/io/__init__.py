"""File I/O: LIBSVM sparse data files, model files, and svm-scale.

PLSSVM is a drop-in LIBSVM replacement, so all on-disk formats follow
LIBSVM:

* :mod:`repro.io.libsvm_format` — the sparse ``label idx:value ...`` data
  format, read into a *dense* array (the paper's §III: sparse files are
  densified by filling in zeros) and written back sparsely;
* model files live in :mod:`repro.core.model` (re-exported here);
* :mod:`repro.io.scaling` — the ``svm-scale`` workflow: linear feature
  scaling to ``[-1, 1]`` with scale-factor files that can be saved and
  re-applied to test data;
* :mod:`repro.io.chunked` — out-of-core row-block streaming under a byte
  budget (``ChunkedDataset``), with one-time spill of text formats into
  the PLSB binary layout.
"""

from ..core.model import load_model, save_model
from .binary_format import (
    is_binary_file,
    read_binary_file,
    read_binary_header,
    write_binary_file,
)
from .chunked import (
    ArrayRowSource,
    ChunkedDataset,
    as_row_source,
    is_row_source,
    open_chunked,
    spill_to_binary,
)
from .csv_format import csv_to_libsvm, read_csv_file, write_csv_file
from .libsvm_format import read_libsvm_file, scan_libsvm_file, write_libsvm_file
from .scaling import FeatureScaler, load_scaling, save_scaling

__all__ = [
    "read_libsvm_file",
    "write_libsvm_file",
    "scan_libsvm_file",
    "read_binary_file",
    "write_binary_file",
    "read_binary_header",
    "is_binary_file",
    "read_csv_file",
    "write_csv_file",
    "csv_to_libsvm",
    "ChunkedDataset",
    "ArrayRowSource",
    "open_chunked",
    "as_row_source",
    "is_row_source",
    "spill_to_binary",
    "load_model",
    "save_model",
    "FeatureScaler",
    "save_scaling",
    "load_scaling",
]
