"""Chunked dataset loading: stream row-blocks from disk under a byte budget.

Every earlier code path materialized the full dense ``X`` in host memory, so
``m`` was capped by RAM long before compute. This module is the io half of
the out-of-core tier (ROADMAP "Out-of-core + sample-sharded training"):

* :class:`ChunkedDataset` serves row-blocks of a dense on-disk matrix with
  plain buffered reads (seek + read). It deliberately does **not** use
  ``numpy.memmap`` for block iteration — touched mapped pages count toward
  RSS, which would defeat the ``--memory-budget-mb`` proof obligation.
  A hot-block LRU cache bounded by a share of the byte budget keeps the
  row-sharded solver's repeated sweeps from re-reading blocks that fit;
  data larger than the cache degrades to pure streaming.
* Text formats (libsvm/csv) are *spilled* once into the PLSB binary layout
  (:mod:`repro.io.binary_format`) next to the source file, using the
  two-pass streaming parsers so the conversion itself stays within one row
  block of memory. Subsequent opens reuse the spill cache when it is newer
  than the source.
* :class:`ArrayRowSource` adapts an in-memory array to the same row-block
  interface, so ``RowShardedQMatrix`` and the solvers can consume either
  without branching.

Labels are always held in memory (O(m) floats — negligible next to the
``m × d`` matrix).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from pathlib import Path
from typing import Iterator, Optional, Sequence, Tuple, Union

import numpy as np

from ..exceptions import FileFormatError, InvalidParameterError
from ..membudget import active_memory_budget, budget_from_mb, format_bytes
from .binary_format import (
    BinaryRowWriter,
    is_binary_file,
    read_binary_header,
)
from .csv_format import _is_numeric_row, _iter_csv_rows
from .libsvm_format import (
    _parse_entry,
    _resolve_width,
    iter_libsvm_rows,
    scan_libsvm_file,
)

__all__ = [
    "ChunkedDataset",
    "ArrayRowSource",
    "open_chunked",
    "as_row_source",
    "is_row_source",
    "spill_to_binary",
    "DEFAULT_BLOCK_BYTES",
    "BLOCK_BUDGET_FRACTION",
]

# Block size when no budget constrains it: 64 MiB of rows at a time.
DEFAULT_BLOCK_BYTES = 64 * 1024 * 1024
# A row block may use at most this share of the active byte budget; the
# rest is headroom for kernel tiles, CG vectors, and the interpreter.
BLOCK_BUDGET_FRACTION = 0.25
# The hot-block LRU may use at most this share of the active byte budget
# (the same share a single row block may use, so cache + in-flight block
# together stay at half the budget).
CACHE_BUDGET_FRACTION = 0.25
# Spill conversion buffers this many rows before flushing to the cache file.
_SPILL_BLOCK_ROWS = 4096


def is_row_source(obj) -> bool:
    """True when ``obj`` exposes the row-block streaming interface."""
    return all(
        hasattr(obj, name)
        for name in ("num_rows", "num_features", "iter_blocks", "row_block")
    )


def as_row_source(X, *, block_rows: Optional[int] = None):
    """Wrap ``X`` into a row source (pass-through when it already is one)."""
    if is_row_source(X):
        return X
    return ArrayRowSource(X, block_rows=block_rows)


def _resolve_block_rows(
    row_bytes: int,
    num_rows: int,
    block_rows: Optional[int],
    budget_bytes: Optional[int],
) -> int:
    """Pick rows-per-block from an explicit override or the byte budget."""
    if block_rows is not None:
        block_rows = int(block_rows)
        if block_rows < 1:
            raise InvalidParameterError(
                f"block_rows must be >= 1, got {block_rows}"
            )
        return min(block_rows, max(num_rows, 1))
    cap = DEFAULT_BLOCK_BYTES
    if budget_bytes is not None:
        cap = int(budget_bytes * BLOCK_BUDGET_FRACTION)
        if row_bytes > cap:
            raise InvalidParameterError(
                f"one dataset row needs {format_bytes(row_bytes)} but the "
                f"memory budget of {format_bytes(budget_bytes)} leaves only "
                f"{format_bytes(cap)} per row block; raise --memory-budget-mb"
            )
    return max(1, min(max(num_rows, 1), cap // max(row_bytes, 1)))


class ArrayRowSource:
    """Row-block interface over an in-memory dense array.

    Lets the sharded/streaming code paths run on arrays the caller already
    holds (e.g. ``LSSVC(shard_rows=4)`` on an ndarray): blocks are views,
    so no data is copied.
    """

    def __init__(self, X: np.ndarray, *, block_rows: Optional[int] = None) -> None:
        X = np.ascontiguousarray(X)
        if X.ndim != 2:
            raise InvalidParameterError(
                f"training data must be 2-D, got shape {X.shape}"
            )
        self._X = X
        self.num_rows = int(X.shape[0])
        self.num_features = int(X.shape[1])
        self.dtype = X.dtype
        self.block_rows = _resolve_block_rows(
            self.num_features * X.dtype.itemsize,
            self.num_rows,
            block_rows,
            None,
        )

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.num_rows, self.num_features)

    ndim = 2

    @property
    def nbytes_dense(self) -> int:
        return self._X.nbytes

    def iter_blocks(
        self, block_rows: Optional[int] = None, *, stop: Optional[int] = None
    ) -> Iterator[Tuple[int, int, np.ndarray]]:
        step = block_rows or self.block_rows
        end = self.num_rows if stop is None else min(int(stop), self.num_rows)
        for start in range(0, end, step):
            hi = min(start + step, end)
            yield start, hi, self._X[start:hi]

    def row_block(self, start: int, stop: int) -> np.ndarray:
        return self._X[start:stop]

    def gather_rows(self, indices) -> np.ndarray:
        return self._X[np.asarray(indices, dtype=np.intp)]

    def row(self, i: int) -> np.ndarray:
        return self._X[int(i)]

    def as_array(self) -> np.ndarray:
        """The full matrix (already in memory here)."""
        return self._X

    def close(self) -> None:  # interface symmetry with ChunkedDataset
        pass

    def __enter__(self) -> "ArrayRowSource":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


def spill_to_binary(
    src: Union[str, Path],
    dst: Union[str, Path],
    *,
    num_features: Optional[int] = None,
    dtype=np.float64,
    label_column: int = 0,
    delimiter: str = ",",
    has_header: Optional[bool] = None,
) -> Path:
    """Convert a libsvm/csv file to PLSB with bounded memory; returns ``dst``.

    The conversion reuses the readers' two-pass structure (count, then
    fill), holding at most one ``_SPILL_BLOCK_ROWS``-row buffer.
    """
    src = Path(src)
    dst = Path(dst)
    if src.suffix.lower() == ".csv":
        _spill_csv(src, dst, dtype, label_column, delimiter, has_header)
    else:
        _spill_libsvm(src, dst, num_features, dtype)
    return dst


def _spill_libsvm(src: Path, dst: Path, num_features, dtype) -> None:
    num_rows, max_index, labels = scan_libsvm_file(src)
    if num_rows == 0:
        raise FileFormatError(f"{src}: file contains no data points")
    width = _resolve_width(src, max_index, num_features)
    with BinaryRowWriter(dst, labels, width, dtype) as writer:
        buf = np.zeros((min(_SPILL_BLOCK_ROWS, num_rows), width), dtype=dtype)
        filled = 0
        for lineno, _, tokens in iter_libsvm_rows(src):
            row = buf[filled]
            last_index = 0
            for token in tokens:
                last_index, val = _parse_entry(src, lineno, token, last_index)
                row[last_index - 1] = val
            filled += 1
            if filled == buf.shape[0]:
                writer.append(buf)
                buf[:] = 0.0
                filled = 0
        if filled:
            writer.append(buf[:filled])


def _spill_csv(src: Path, dst: Path, dtype, label_column, delimiter, has_header) -> None:
    # Pass 1: count rows, sniff the header, and collect the label column
    # into a geometrically-grown array (labels precede data in PLSB).
    labels = np.empty(1024, dtype=np.float64)
    count = 0
    first_row = None
    header_pending = has_header
    width = label_idx = None
    for row in _iter_csv_rows(src, delimiter):
        if first_row is None:
            first_row = row
            if header_pending is None:
                header_pending = not _is_numeric_row(row)
            width = len(row)
            if width < 2:
                raise FileFormatError(f"{src}: need a label column plus features")
            label_idx = label_column if label_column >= 0 else width + label_column
            if not 0 <= label_idx < width:
                raise FileFormatError(
                    f"{src}: label column {label_column} out of range "
                    f"for {width} columns"
                )
            if header_pending:
                continue
        if len(row) != width:
            raise FileFormatError(
                f"{src}: row {count + 1} has {len(row)} cells, expected {width}"
            )
        try:
            label = float(row[label_idx])
        except ValueError as exc:
            raise FileFormatError(f"{src}: row {count + 1}: {exc}") from None
        if count == labels.shape[0]:
            grown = np.empty(labels.shape[0] * 2, dtype=np.float64)
            grown[:count] = labels
            labels = grown
        labels[count] = label
        count += 1
    if first_row is None:
        raise FileFormatError(f"{src}: file contains no data rows")
    if count == 0:
        raise FileFormatError(f"{src}: only a header line, no data")

    # Pass 2: convert feature values block by block into the PLSB file.
    with BinaryRowWriter(dst, labels[:count], width - 1, dtype) as writer:
        block = np.empty((min(_SPILL_BLOCK_ROWS, count), width - 1), dtype=dtype)
        filled = 0
        i = 0
        for row in _iter_csv_rows(src, delimiter, skip_first=bool(header_pending)):
            if i >= count:
                raise FileFormatError(f"{src}: file changed between parsing passes")
            if len(row) != width:
                raise FileFormatError(
                    f"{src}: row {i + 1} has {len(row)} cells, expected {width}"
                )
            try:
                values = [float(cell) for cell in row]
            except ValueError as exc:
                raise FileFormatError(f"{src}: row {i + 1}: {exc}") from None
            block[filled] = values[:label_idx] + values[label_idx + 1 :]
            filled += 1
            i += 1
            if filled == block.shape[0]:
                writer.append(block)
                filled = 0
        if i != count:
            raise FileFormatError(f"{src}: file changed between parsing passes")
        if filled:
            writer.append(block[:filled])


class ChunkedDataset:
    """Stream row-blocks of an on-disk dense matrix under a byte budget.

    Open via :func:`open_chunked`, which handles the text-format spill.
    Reads go through one locked file handle with explicit seeks; each
    ``iter_blocks`` step materializes a single ``(block_rows, d)`` array.

    Repeated sweeps (every CG iteration streams the data twice on the
    linear path) are served from a hot-block LRU bounded by
    :data:`CACHE_BUDGET_FRACTION` of the byte budget: blocks are stored
    read-only under their ``(start, stop)`` key, so data that fits is
    read from disk once while larger-than-cache data falls back to pure
    streaming, never exceeding the bound.
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        memory_budget_mb: Optional[float] = None,
        block_rows: Optional[int] = None,
        source_path: Optional[Union[str, Path]] = None,
        cache_bytes: Optional[int] = None,
    ) -> None:
        self.path = Path(path)
        self.source_path = Path(source_path) if source_path else self.path
        header = read_binary_header(self.path)
        self._header = header
        self.num_rows = header.rows
        self.num_features = header.cols
        self.dtype = header.dtype
        budget = budget_from_mb(memory_budget_mb)
        if budget is None:
            budget = active_memory_budget()
        self.budget_bytes = budget
        self.block_rows = _resolve_block_rows(
            header.row_bytes, header.rows, block_rows, budget
        )
        if cache_bytes is None:
            cache_bytes = (
                DEFAULT_BLOCK_BYTES
                if budget is None
                else int(budget * CACHE_BUDGET_FRACTION)
            )
        self._cache_capacity = max(int(cache_bytes), 0)
        self._cache: "OrderedDict[Tuple[int, int], np.ndarray]" = OrderedDict()
        self._cache_bytes = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self._lock = threading.Lock()
        self._handle = self.path.open("rb")
        self.y = self._read_labels()

    # -- shape protocol ----------------------------------------------------

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.num_rows, self.num_features)

    ndim = 2

    @property
    def nbytes_dense(self) -> int:
        """Bytes a dense in-memory copy of the matrix would take."""
        return self.num_rows * self.num_features * self.dtype.itemsize

    # -- block reads -------------------------------------------------------

    def _read_labels(self) -> np.ndarray:
        h = self._header
        with self._lock:
            self._handle.seek(h.labels_offset)
            raw = self._handle.read(h.rows * h.dtype.itemsize)
        return np.frombuffer(raw, dtype=h.le_dtype).astype(h.dtype, copy=False)

    def row_block(self, start: int, stop: int) -> np.ndarray:
        """Read rows ``[start, stop)`` as a read-only ``(stop-start, d)`` array.

        Served from the hot-block LRU when the same range was read before
        and still fits the cache bound; otherwise one seek + read.
        """
        h = self._header
        start = int(start)
        stop = int(stop)
        if not 0 <= start <= stop <= self.num_rows:
            raise InvalidParameterError(
                f"row block [{start}, {stop}) out of range for {self.num_rows} rows"
            )
        key = (start, stop)
        count = stop - start
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                self.cache_hits += 1
                return cached
            self.cache_misses += 1
            self._handle.seek(h.data_offset + start * h.row_bytes)
            raw = self._handle.read(count * h.row_bytes)
        if len(raw) != count * h.row_bytes:
            raise FileFormatError(f"{self.path}: short read (file truncated?)")
        block = np.frombuffer(raw, dtype=h.le_dtype).reshape(count, h.cols)
        block = block.astype(h.dtype, copy=False)
        # frombuffer over bytes is already read-only; keep casts that way
        # too so a cached block can be shared safely between consumers.
        block.flags.writeable = False
        if 0 < block.nbytes <= self._cache_capacity:
            with self._lock:
                if key not in self._cache:
                    self._cache[key] = block
                    self._cache_bytes += block.nbytes
                    while self._cache_bytes > self._cache_capacity:
                        _, evicted = self._cache.popitem(last=False)
                        self._cache_bytes -= evicted.nbytes
        return block

    def iter_blocks(
        self, block_rows: Optional[int] = None, *, stop: Optional[int] = None
    ) -> Iterator[Tuple[int, int, np.ndarray]]:
        """Yield ``(start, stop, block)`` covering rows ``[0, stop)`` in order."""
        step = block_rows or self.block_rows
        end = self.num_rows if stop is None else min(int(stop), self.num_rows)
        for start in range(0, end, step):
            hi = min(start + step, end)
            yield start, hi, self.row_block(start, hi)

    def gather_rows(self, indices: Sequence[int]) -> np.ndarray:
        """Read an arbitrary set of rows (RPCholesky pivot gathers)."""
        indices = np.asarray(indices, dtype=np.intp).ravel()
        out = np.empty((indices.shape[0], self.num_features), dtype=self.dtype)
        for k, i in enumerate(indices):
            out[k] = self.row_block(int(i), int(i) + 1)[0]
        return out

    def row(self, i: int) -> np.ndarray:
        return self.row_block(int(i), int(i) + 1)[0]

    def as_array(self) -> np.ndarray:
        """Lazy read-only memmap of the data matrix.

        O(1) to create; pages are only paged in (and counted toward RSS)
        when touched. Training never touches it — it backs the fitted
        model's ``support_vectors`` so prediction works after the fit.
        """
        h = self._header
        return np.memmap(
            self.path,
            dtype=h.le_dtype,
            mode="r",
            offset=h.data_offset,
            shape=(h.rows, h.cols),
        )

    def refresh(self) -> int:
        """Re-open the file and pick up appended rows; returns the row delta.

        The streaming trainer appends rows via
        :func:`~repro.io.binary_format.append_binary_rows`, which publishes
        a *new* file under the same path with ``os.replace`` — the handle
        this dataset holds still reads the old inode, so a refresh must
        reopen by path. The header is re-validated, labels are re-read,
        and the hot-block cache is dropped (block keys are positional and
        every data byte moved). A shrunk or reshaped file raises
        :class:`FileFormatError` rather than silently serving mixed
        generations.
        """
        header = read_binary_header(self.path)
        if header.cols != self.num_features or header.dtype != self.dtype:
            raise FileFormatError(
                f"{self.path}: shape/dtype changed under refresh "
                f"({header.rows}x{header.cols} {header.dtype}, was "
                f"{self.num_rows}x{self.num_features} {self.dtype})"
            )
        if header.rows < self.num_rows:
            raise FileFormatError(
                f"{self.path}: shrank from {self.num_rows} to {header.rows} "
                "rows under refresh"
            )
        delta = header.rows - self.num_rows
        handle = self.path.open("rb")
        with self._lock:
            old = self._handle
            self._handle = handle
            self._header = header
            self.num_rows = header.rows
            self._cache.clear()
            self._cache_bytes = 0
        if not old.closed:
            old.close()
        self.y = self._read_labels()
        return delta

    def close(self) -> None:
        self._cache.clear()
        self._cache_bytes = 0
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "ChunkedDataset":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        return (
            f"ChunkedDataset({self.path.name!r}, rows={self.num_rows}, "
            f"features={self.num_features}, block_rows={self.block_rows}, "
            f"dense={format_bytes(self.nbytes_dense)})"
        )


def open_chunked(
    path: Union[str, Path],
    *,
    memory_budget_mb: Optional[float] = None,
    block_rows: Optional[int] = None,
    num_features: Optional[int] = None,
    dtype=np.float64,
    spill_path: Optional[Union[str, Path]] = None,
    label_column: int = 0,
    delimiter: str = ",",
    has_header: Optional[bool] = None,
) -> ChunkedDataset:
    """Open a dataset for chunked streaming, spilling text formats to PLSB.

    PLSB files are served in place. libsvm/csv files are converted once to
    ``<path>.plsb`` (or ``spill_path``) with the bounded-memory streaming
    converter; an existing spill newer than the source is reused.
    """
    path = Path(path)
    if not path.exists():
        raise FileFormatError(f"{path}: no such file")
    if is_binary_file(path):
        return ChunkedDataset(
            path, memory_budget_mb=memory_budget_mb, block_rows=block_rows
        )
    cache = Path(spill_path) if spill_path else path.with_name(path.name + ".plsb")
    if not _spill_is_fresh(path, cache):
        spill_to_binary(
            path,
            cache,
            num_features=num_features,
            dtype=dtype,
            label_column=label_column,
            delimiter=delimiter,
            has_header=has_header,
        )
    return ChunkedDataset(
        cache,
        memory_budget_mb=memory_budget_mb,
        block_rows=block_rows,
        source_path=path,
    )


def _spill_is_fresh(src: Path, cache: Path) -> bool:
    if not cache.exists():
        return False
    try:
        read_binary_header(cache)
    except FileFormatError:
        return False
    return cache.stat().st_mtime >= src.stat().st_mtime
